//! Bounded behavioural equivalence and refinement between two compiled
//! specifications over one universe.
//!
//! The FinTech constraint-equivalence workload: two different
//! formulations of "the same" timing rules should accept exactly the
//! same schedules. [`check_equivalence`] explores the *synchronized
//! product* of two [`Program`]s — compiled as one product program
//! (both constraint populations conjoined over the shared universe)
//! and run through the engine's **parallel explorer**, so
//! [`EquivOptions::workers`] threads expand each BFS level. At every
//! freshly discovered product state, both sides' cursors are
//! positioned and their acceptable-step sets enumerated over the union
//! of their constrained events; the first mismatch (in canonical absorption
//! order, identical for every worker count) stops the exploration at
//! its level boundary and comes back as a shortest distinguishing
//! schedule. [`check_refinement`] is the one-sided variant (every
//! schedule of the left program is a schedule of the right).

use crate::check::schedule_through_parents;
use moccml_engine::{Cursor, ExploreOptions, ExploreVisitor, Program, SolverOptions, VisitControl};
use moccml_kernel::{EventId, Schedule, Specification, StateKey, Step};
use std::error::Error;
use std::fmt;

/// Errors of the product construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The two programs are built over different universes (different
    /// event names or numbering), so their steps are not comparable.
    UniverseMismatch,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UniverseMismatch => {
                write!(f, "programs are built over different universes")
            }
        }
    }
}

impl Error for VerifyError {}

/// Which side of a comparison a distinguishing step belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The first (`left`) program.
    Left,
    /// The second (`right`) program.
    Right,
}

/// A behavioural difference: after the common `schedule`, exactly one
/// program accepts `step`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distinguisher {
    /// The common prefix, acceptable to both programs.
    pub schedule: Schedule,
    /// The step accepted by only one of them.
    pub step: Step,
    /// Which program accepts `step`.
    pub only_accepted_by: Side,
}

/// The outcome of a bounded product exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceVerdict {
    /// Every reachable state pair (within the bound) agrees on its
    /// acceptable steps; the product space was exhausted.
    Equivalent {
        /// State pairs visited.
        pairs_visited: usize,
    },
    /// The programs differ; a shortest distinguishing schedule.
    Distinguished(Distinguisher),
    /// The bound was hit before a difference was found: unknown.
    Unknown {
        /// State pairs visited before the bound.
        pairs_visited: usize,
    },
}

impl EquivalenceVerdict {
    /// Whether the verdict is [`Equivalent`](EquivalenceVerdict::Equivalent)
    /// (for refinement checks: *refines*).
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, EquivalenceVerdict::Equivalent { .. })
    }
}

/// Options bounding the product exploration.
#[derive(Debug, Clone)]
pub struct EquivOptions {
    /// Stop after this many interned state pairs (verdict becomes
    /// [`Unknown`](EquivalenceVerdict::Unknown) if no difference was
    /// found first).
    pub max_states: usize,
    /// Solver configuration for the per-pair step enumeration
    /// (`include_empty` is ignored: the empty step is acceptable to
    /// every specification and distinguishes nothing).
    pub solver: SolverOptions,
    /// Worker threads expanding each BFS level of the product — the
    /// same knob as [`ExploreOptions::workers`]. Defaults to
    /// [`std::thread::available_parallelism`]; the verdict, including
    /// any [`Distinguisher`], is identical for every value.
    pub workers: usize,
}

impl Default for EquivOptions {
    fn default() -> Self {
        EquivOptions {
            max_states: 100_000,
            solver: SolverOptions::default(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl EquivOptions {
    /// Bounds the number of state pairs (builder style).
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Sets the worker-thread count (builder style); `1` runs the
    /// explorer's inline serial path. Any value yields the same
    /// verdict.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Checks two programs for behavioural equivalence up to
/// `options.max_states` product states: at every reachable pair, both
/// must accept exactly the same non-empty steps over the union of
/// their constrained events (events only one side constrains are free
/// — always allowed — on the other).
///
/// The exploration is deterministic: pairs are visited breadth first
/// and steps in sorted order, so the returned [`Distinguisher`] is a
/// *shortest* distinguishing schedule with the `Ord`-smallest
/// distinguishing step.
///
/// # Errors
///
/// Returns [`VerifyError::UniverseMismatch`] if the programs were
/// compiled over different universes.
///
/// # Example
///
/// ```
/// use moccml_ccsl::{Alternation, Precedence};
/// use moccml_engine::Program;
/// use moccml_kernel::{Specification, Universe};
/// use moccml_verify::{check_equivalence, EquivOptions, Side};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut strict = Specification::new("alt", u.clone());
/// strict.add_constraint(Box::new(Alternation::new("a~b", a, b)));
/// let mut loose = Specification::new("prec", u.clone());
/// loose.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
///
/// let verdict = check_equivalence(
///     &Program::new(strict),
///     &Program::new(loose),
///     &EquivOptions::default(),
/// ).expect("same universe");
/// // the precedence admits a second `a` before any `b`; the
/// // alternation does not
/// let d = match verdict {
///     moccml_verify::EquivalenceVerdict::Distinguished(d) => d,
///     other => panic!("must differ: {other:?}"),
/// };
/// assert_eq!(d.only_accepted_by, Side::Right);
/// ```
pub fn check_equivalence(
    left: &Program,
    right: &Program,
    options: &EquivOptions,
) -> Result<EquivalenceVerdict, VerifyError> {
    product_explore(left, right, options, Mode::Equivalence)
}

/// Checks that `left` *refines* `right`: along every schedule of
/// `left`, each step `left` accepts is also accepted by `right` (the
/// product follows `left`'s steps only). The returned distinguisher,
/// if any, always has
/// [`only_accepted_by`](Distinguisher::only_accepted_by) =
/// [`Side::Left`].
///
/// # Errors
///
/// Returns [`VerifyError::UniverseMismatch`] if the programs were
/// compiled over different universes.
pub fn check_refinement(
    left: &Program,
    right: &Program,
    options: &EquivOptions,
) -> Result<EquivalenceVerdict, VerifyError> {
    product_explore(left, right, options, Mode::Refinement)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Equivalence,
    Refinement,
}

/// The [`ExploreVisitor`] that rides the product exploration: it
/// mirrors the explorer's interning (one `(left key, right key)` pair
/// per product state, derived by firing the absorbed step on both
/// side cursors) and difference-checks every freshly discovered pair
/// in canonical absorption order. The first mismatch stops the BFS at
/// its level boundary — the same deterministic early-stop contract the
/// property checker uses, so the returned [`Distinguisher`] is
/// identical for every worker count.
struct ProductVisitor<'a> {
    lcur: Cursor,
    rcur: Cursor,
    /// `(left key, right key)` per product state index, in interning
    /// order — parallel to the explorer's own state vector.
    pairs: Vec<(StateKey, StateKey)>,
    /// First-discovery parent links for shortest-schedule
    /// reconstruction.
    parents: Vec<Option<(usize, Step)>>,
    union: &'a [EventId],
    solver: SolverOptions,
    mode: Mode,
    violation: Option<Distinguisher>,
}

impl ProductVisitor<'_> {
    /// Difference-checks product state `pair`, **assuming both side
    /// cursors are already positioned at it**: enumerate their
    /// acceptable steps over the event union, return the first
    /// disagreement. (Callers position the cursors as a side effect of
    /// deriving the pair, so no restore is needed here.)
    fn check_positioned(&mut self, pair: usize) -> Option<Distinguisher> {
        let ls = self.lcur.acceptable_steps_over(self.union, &self.solver);
        let rs = self.rcur.acceptable_steps_over(self.union, &self.solver);
        first_difference(&ls, &rs, self.mode).map(|(step, side)| Distinguisher {
            schedule: schedule_through_parents(&self.parents, pair),
            step,
            only_accepted_by: side,
        })
    }
}

impl ExploreVisitor for ProductVisitor<'_> {
    fn on_transition(&mut self, source: usize, step: &Step, target: usize, _depth: usize) {
        if target != self.pairs.len() {
            // a previously interned product state: nothing new to learn
            return;
        }
        // fresh state, announced in canonical order with index ==
        // pairs.len(): derive its pair by firing the step on both
        // sides (the product accepts it, so each side does too), which
        // leaves the cursors positioned exactly where the difference
        // check needs them
        let (lkey, rkey) = self.pairs[source].clone();
        self.lcur.restore(&lkey).expect("interned keys restore");
        self.rcur.restore(&rkey).expect("interned keys restore");
        self.lcur
            .fire(step)
            .expect("product steps fire on the left");
        self.rcur
            .fire(step)
            .expect("product steps fire on the right");
        self.pairs
            .push((self.lcur.state_key(), self.rcur.state_key()));
        self.parents.push(Some((source, step.clone())));
        if self.violation.is_none() {
            self.violation = self.check_positioned(target);
        }
    }

    fn on_level_end(&mut self, _depth: usize, _state_count: usize) -> VisitControl {
        if self.violation.is_some() {
            VisitControl::Stop
        } else {
            VisitControl::Continue
        }
    }
}

fn product_explore(
    left: &Program,
    right: &Program,
    options: &EquivOptions,
    mode: Mode,
) -> Result<EquivalenceVerdict, VerifyError> {
    if left.specification().universe() != right.specification().universe() {
        return Err(VerifyError::UniverseMismatch);
    }
    // compare over the union of constrained events: an event only one
    // side constrains is free on the other, and `Step` collects the
    // union as a sorted, deduplicated bitset
    let union: Vec<EventId> = {
        let mut all: Step = left.constrained_events().iter().copied().collect();
        all.extend(right.constrained_events().iter().copied());
        all.iter().collect()
    };
    let solver = options.solver.clone().with_empty(false);

    // the synchronized product as one compiled program: both
    // constraint populations conjoined over the shared universe. Its
    // acceptable steps are exactly the steps *both* sides accept —
    // which, at every difference-free pair, are exactly the successor
    // steps the serial pair-BFS followed (equivalence: ls == rs;
    // refinement: ls ⊆ rs, so the intersection is ls). Exploring it
    // therefore visits the same pairs, now across worker threads.
    let mut product = Specification::new("product", left.specification().universe().clone());
    for constraint in left
        .specification()
        .constraints()
        .iter()
        .chain(right.specification().constraints())
    {
        product.add_constraint(constraint.boxed_clone());
    }
    let product = Program::new(product);

    let mut visitor = ProductVisitor {
        lcur: left.cursor(),
        rcur: right.cursor(),
        pairs: vec![(left.template_key().clone(), right.template_key().clone())],
        parents: vec![None],
        union: &union,
        solver: solver.clone(),
        mode,
        violation: None,
    };
    // the root pair is discovered by construction, not by transition:
    // check it before exploring (the fresh cursors already sit at it)
    if let Some(d) = visitor.check_positioned(0) {
        return Ok(EquivalenceVerdict::Distinguished(d));
    }
    let explore_options = ExploreOptions::default()
        .with_max_states(options.max_states)
        .with_solver(solver)
        .with_workers(options.workers);
    let space = product.explore_with(&explore_options, &mut visitor);
    if let Some(d) = visitor.violation {
        return Ok(EquivalenceVerdict::Distinguished(d));
    }
    let pairs_visited = space.state_count();
    Ok(if space.truncated() {
        EquivalenceVerdict::Unknown { pairs_visited }
    } else {
        EquivalenceVerdict::Equivalent { pairs_visited }
    })
}

/// First step on which the sorted step sets disagree, with the side
/// that accepts it. In refinement mode only `left`-only steps count.
fn first_difference(ls: &[Step], rs: &[Step], mode: Mode) -> Option<(Step, Side)> {
    let (mut i, mut j) = (0, 0);
    while i < ls.len() && j < rs.len() {
        match ls[i].cmp(&rs[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                return Some((ls[i].clone(), Side::Left));
            }
            std::cmp::Ordering::Greater => {
                if mode == Mode::Equivalence {
                    return Some((rs[j].clone(), Side::Right));
                }
                j += 1;
            }
        }
    }
    if i < ls.len() {
        return Some((ls[i].clone(), Side::Left));
    }
    if j < rs.len() && mode == Mode::Equivalence {
        return Some((rs[j].clone(), Side::Right));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Coincidence, Precedence, SubClock};
    use moccml_kernel::{Specification, Universe};
    use std::sync::Arc;

    fn program_with(u: &Universe, build: impl FnOnce(&mut Specification)) -> Arc<Program> {
        let mut spec = Specification::new("spec", u.clone());
        build(&mut spec);
        Program::new(spec)
    }

    #[test]
    fn identical_specs_are_equivalent() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let p1 = program_with(&u, |s| {
            s.add_constraint(Box::new(Alternation::new("x", a, b)));
        });
        let p2 = program_with(&u, |s| {
            s.add_constraint(Box::new(Alternation::new("y", a, b)));
        });
        let verdict = check_equivalence(&p1, &p2, &EquivOptions::default()).expect("same universe");
        assert!(verdict.holds());
    }

    #[test]
    fn syntactically_different_equivalent_formulations() {
        // a ⊆ b expressed as a sub-clock vs. as a coincidence of a with
        // a∩b — here simply: subclock(a,b) vs subclock(a,b) conjoined
        // with a tautological second subclock
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let p1 = program_with(&u, |s| {
            s.add_constraint(Box::new(SubClock::new("one", a, b)));
        });
        let p2 = program_with(&u, |s| {
            s.add_constraint(Box::new(SubClock::new("one", a, b)));
            s.add_constraint(Box::new(SubClock::new("again", a, b)));
        });
        let verdict = check_equivalence(&p1, &p2, &EquivOptions::default()).expect("same universe");
        assert!(verdict.holds());
    }

    #[test]
    fn distinguishing_schedule_is_shortest_and_replayable() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let alt = program_with(&u, |s| {
            s.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        });
        let prec = program_with(&u, |s| {
            s.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        });
        let verdict =
            check_equivalence(&alt, &prec, &EquivOptions::default()).expect("same universe");
        let EquivalenceVerdict::Distinguished(d) = verdict else {
            panic!("alternation ≠ precedence");
        };
        // after `a`, the precedence also allows another `a` (and {a,b});
        // the distinguishing prefix is the single step {a}
        assert_eq!(d.schedule.len(), 1);
        assert_eq!(d.only_accepted_by, Side::Right);
        // the prefix replays on both, prefix+step only on the right
        assert!(crate::conformance(&alt, &d.schedule).conforms());
        let mut extended = d.schedule.clone();
        extended.push(d.step.clone());
        assert!(!crate::conformance(&alt, &extended).conforms());
        assert!(crate::conformance(&prec, &extended).conforms());
    }

    #[test]
    fn refinement_is_one_sided() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let alt = program_with(&u, |s| {
            s.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        });
        let prec = program_with(&u, |s| {
            s.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        });
        // every alternating schedule respects the precedence…
        assert!(check_refinement(&alt, &prec, &EquivOptions::default())
            .expect("same universe")
            .holds());
        // …but not vice versa
        let verdict =
            check_refinement(&prec, &alt, &EquivOptions::default()).expect("same universe");
        let EquivalenceVerdict::Distinguished(d) = verdict else {
            panic!("precedence does not refine alternation");
        };
        assert_eq!(d.only_accepted_by, Side::Left);
    }

    #[test]
    fn events_constrained_on_one_side_only_distinguish() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let constrained = program_with(&u, |s| {
            s.add_constraint(Box::new(Coincidence::new("a=b", a, b)));
        });
        let free = program_with(&u, |_| {});
        let verdict = check_equivalence(&constrained, &free, &EquivOptions::default())
            .expect("same universe");
        let EquivalenceVerdict::Distinguished(d) = verdict else {
            panic!("free universe accepts {{a}} alone");
        };
        assert!(d.schedule.is_empty());
        assert_eq!(d.only_accepted_by, Side::Right);
    }

    #[test]
    fn unbounded_product_reports_unknown() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let p1 = program_with(&u, |s| {
            s.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        });
        let p2 = program_with(&u, |s| {
            s.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        });
        let verdict = check_equivalence(&p1, &p2, &EquivOptions::default().with_max_states(8))
            .expect("same universe");
        assert_eq!(verdict, EquivalenceVerdict::Unknown { pairs_visited: 8 });
    }

    #[test]
    fn verdicts_are_identical_for_every_worker_count() {
        // the product of the alternation and the bounded precedence is
        // distinguished a few levels deep; every worker count must
        // return the *same* shortest distinguisher — and the same
        // Equivalent/Unknown verdicts on the agreeing pairs
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let alt = program_with(&u, |s| {
            s.add_constraint(Box::new(Alternation::new("a~b", a, b)));
            s.add_constraint(Box::new(Precedence::strict("b<c", b, c).with_bound(3)));
        });
        let prec = program_with(&u, |s| {
            s.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(1)));
            s.add_constraint(Box::new(Precedence::strict("b<c", b, c).with_bound(3)));
        });
        let serial = check_equivalence(&alt, &prec, &EquivOptions::default().with_workers(1))
            .expect("same universe");
        assert!(
            matches!(serial, EquivalenceVerdict::Distinguished(_)),
            "{serial:?}"
        );
        for workers in [2, 8] {
            let parallel =
                check_equivalence(&alt, &prec, &EquivOptions::default().with_workers(workers))
                    .expect("same universe");
            assert_eq!(serial, parallel, "workers={workers}");
        }
        // refinement through the same parallel product
        let serial = check_refinement(&prec, &alt, &EquivOptions::default().with_workers(1))
            .expect("same universe");
        for workers in [2, 8] {
            let parallel =
                check_refinement(&prec, &alt, &EquivOptions::default().with_workers(workers))
                    .expect("same universe");
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn equivalent_verdicts_agree_across_workers_and_bounds() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let p1 = program_with(&u, |s| {
            s.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(2)));
        });
        let p2 = program_with(&u, |s| {
            s.add_constraint(Box::new(Precedence::strict("a<b2", a, b).with_bound(2)));
        });
        let serial = check_equivalence(&p1, &p2, &EquivOptions::default().with_workers(1))
            .expect("same universe");
        let EquivalenceVerdict::Equivalent { pairs_visited } = serial else {
            panic!("identical bounded precedences are equivalent");
        };
        assert_eq!(pairs_visited, 3); // δ-pairs (0,0), (1,1), (2,2)
        for workers in [2, 8] {
            assert_eq!(
                check_equivalence(&p1, &p2, &EquivOptions::default().with_workers(workers))
                    .expect("same universe"),
                serial,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn universe_mismatch_is_rejected() {
        let mut u1 = Universe::new();
        u1.event("a");
        let mut u2 = Universe::new();
        u2.event("different");
        let p1 = Program::new(Specification::new("one", u1));
        let p2 = Program::new(Specification::new("two", u2));
        assert_eq!(
            check_equivalence(&p1, &p2, &EquivOptions::default()),
            Err(VerifyError::UniverseMismatch)
        );
    }
}
