//! Greedy counterexample minimization: shrink a witness schedule step
//! by step — dropping whole steps and thinning events out of steps —
//! while re-validating every candidate through a fresh
//! [`Cursor`](moccml_engine::Cursor), until the witness is *locally
//! minimal*: no single step can be dropped and no single event removed
//! without the schedule ceasing to witness the violation.
//!
//! The checker's counterexamples are already *shortest* (BFS order),
//! but shortest is not minimal: a violating step found on a wide
//! frontier often carries unrelated simultaneous events, and hand-fed
//! witnesses (conformance logs, regression fixtures) may contain slack
//! in both dimensions. Minimization never changes the verdict — a
//! candidate only replaces the current witness if [`is_witness`] holds
//! for it.

use crate::check::Counterexample;
use crate::conformance::{conformance, Verdict};
use crate::prop::Prop;
use crate::temporal::{TraceEvaluator, TraceStatus};
use moccml_engine::{Program, SolverOptions};
use moccml_kernel::Schedule;

/// Whether `schedule` genuinely witnesses a violation of `prop` on
/// `program`: every step is non-empty (properties quantify over the
/// explorer's non-stuttering runs — an all-stuttering "run" would
/// vacuously refute any bounded liveness property), it replays
/// cleanly through a fresh cursor from the initial state, *and* it
/// exhibits the violation —
///
/// * [`Prop::Always`]\(p\): some step refutes `p`;
/// * [`Prop::Never`]\(p\): some step satisfies `p`;
/// * [`Prop::DeadlockFree`]: the reached state has no acceptable
///   non-empty step;
/// * the bounded-temporal properties ([`Prop::EventuallyWithin`],
///   [`Prop::UntilWithin`], [`Prop::ReleaseWithin`]) are decided by
///   the shared [`TraceEvaluator`] — the same per-step classification
///   the exhaustive checker and the statistical checker use. For
///   `eventually<=k(p)` that means: the first `k` steps are `p`-free
///   (steps past the bound are irrelevant — the run already missed
///   it), **or** the whole schedule is `p`-free, shorter than `k`,
///   and ends in a deadlock (the run can never satisfy `p`). For
///   `until<=k(p, q)` add the third witness shape: a step refuting
///   both `p` and `q` before any `q`-step. For `release<=k(p, q)` the
///   only witness shape is a step refuting `q` while the obligation
///   is open.
///
/// This is the re-validation predicate minimization shrinks against;
/// it is also useful on its own to vet externally supplied witnesses.
#[must_use]
pub fn is_witness(program: &Program, prop: &Prop, schedule: &Schedule) -> bool {
    if schedule.iter().any(moccml_kernel::Step::is_empty) {
        return false;
    }
    if conformance(program, schedule) != Verdict::Conforms {
        return false;
    }
    match prop {
        Prop::Always(p) => schedule.iter().any(|s| !p.eval(s)),
        Prop::Never(p) => schedule.iter().any(|s| p.eval(s)),
        Prop::DeadlockFree => reaches_deadlock(program, schedule),
        Prop::EventuallyWithin(..) | Prop::UntilWithin(..) | Prop::ReleaseWithin(..) => {
            let mut eval = TraceEvaluator::new(prop);
            for step in schedule {
                match eval.observe(step) {
                    TraceStatus::Violated => return true,
                    TraceStatus::Satisfied => return false,
                    TraceStatus::Undecided => {}
                }
            }
            // undecided by the steps alone: an open liveness
            // obligation is violated exactly when the run is wedged
            eval.conclude(reaches_deadlock(program, schedule))
        }
    }
}

/// Replays `schedule` (assumed conforming) and reports whether the
/// reached state is a deadlock.
fn reaches_deadlock(program: &Program, schedule: &Schedule) -> bool {
    let mut cursor = program.cursor();
    for step in schedule {
        if cursor.fire(step).is_err() {
            return false;
        }
    }
    cursor
        .acceptable_steps(&SolverOptions::default())
        .is_empty()
}

/// Greedily minimizes a witness schedule for `prop` on `program`:
/// repeatedly tries to drop each step and to remove each event from
/// each step, keeping a candidate only if it still
/// [`is_witness`]-validates, until a fixpoint. The result is *locally
/// minimal*: dropping any single step, or removing any single event
/// from any step, yields a non-witness.
///
/// If `schedule` does not witness the violation in the first place it
/// is returned unchanged — minimization never turns a non-witness
/// into a witness.
///
/// Deterministic: candidates are tried first-to-last, so equal inputs
/// minimize to equal outputs (the property suite checks this across
/// worker counts).
///
/// # Example
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::Program;
/// use moccml_kernel::{Schedule, Specification, StepPred, Universe};
/// use moccml_verify::{is_witness, minimize_witness, Prop};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let c = u.event("free"); // unconstrained noise event
/// let mut spec = Specification::new("alt", u.clone());
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
/// let program = Program::new(spec);
///
/// // a sloppy witness that `b` eventually fires: noise event, slack
/// // round trip, then the violating step
/// let prop = Prop::Never(StepPred::fired(b));
/// let sloppy = Schedule::parse_lines("a free\nb\na\nb free\n", &u).expect("parses");
/// assert!(is_witness(&program, &prop, &sloppy));
/// let minimal = minimize_witness(&program, &prop, &sloppy);
/// assert_eq!(minimal, Schedule::parse_lines("a\nb\n", &u).expect("parses"));
/// ```
#[must_use]
pub fn minimize_witness(program: &Program, prop: &Prop, schedule: &Schedule) -> Schedule {
    if !is_witness(program, prop, schedule) {
        return schedule.clone();
    }
    let mut current: Vec<_> = schedule.steps().to_vec();
    loop {
        let mut shrunk = false;
        // pass 1: drop whole steps, first to last
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            let candidate_schedule: Schedule = candidate.iter().cloned().collect();
            if is_witness(program, prop, &candidate_schedule) {
                current = candidate;
                shrunk = true;
                // re-try the same index: it now holds the next step
            } else {
                i += 1;
            }
        }
        // pass 2: thin events out of steps, first step / lowest event
        // first
        for i in 0..current.len() {
            let events: Vec<_> = current[i].iter().collect();
            for event in events {
                let mut step = current[i].clone();
                step.remove(event);
                let mut candidate = current.clone();
                candidate[i] = step;
                let candidate_schedule: Schedule = candidate.iter().cloned().collect();
                if is_witness(program, prop, &candidate_schedule) {
                    current = candidate;
                    shrunk = true;
                }
            }
        }
        if !shrunk {
            return current.into_iter().collect();
        }
    }
}

impl Counterexample {
    /// The locally minimal form of this counterexample's schedule —
    /// [`minimize_witness`] applied to it.
    #[must_use]
    pub fn minimized(&self, program: &Program, prop: &Prop) -> Schedule {
        minimize_witness(program, prop, &self.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, PropStatus};
    use moccml_ccsl::{Alternation, Precedence};
    use moccml_engine::ExploreOptions;
    use moccml_kernel::{Specification, Step, StepPred, Universe};

    #[test]
    fn non_witnesses_are_returned_unchanged() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        let prop = Prop::Never(StepPred::fired(b));
        // does not replay (b first) — returned as-is
        let bogus: Schedule = vec![Step::from_events([b])].into_iter().collect();
        assert!(!is_witness(&program, &prop, &bogus));
        assert_eq!(minimize_witness(&program, &prop, &bogus), bogus);
    }

    #[test]
    fn checker_counterexamples_are_already_locally_minimal() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        let prop = Prop::Never(StepPred::fired(b));
        let PropStatus::Violated(ce) = check(&program, &prop, &ExploreOptions::default()) else {
            panic!("b fires at depth 2");
        };
        assert_eq!(ce.minimized(&program, &prop), ce.schedule);
    }

    #[test]
    fn deadlock_witnesses_keep_the_wedging_prefix() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("wedge", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(1)));
        spec.add_constraint(Box::new(Precedence::strict("c<b", c, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c)));
        let program = Program::new(spec);
        let PropStatus::Violated(ce) =
            check(&program, &Prop::DeadlockFree, &ExploreOptions::default())
        else {
            panic!("wedges after a");
        };
        let minimal = ce.minimized(&program, &Prop::DeadlockFree);
        assert!(is_witness(&program, &Prop::DeadlockFree, &minimal));
        assert_eq!(minimal.len(), 1, "the single `a` step is the wedge");
    }

    #[test]
    fn liveness_witnesses_with_slack_past_the_bound_truncate() {
        // a hand-fed trace that satisfies the predicate only *after*
        // the bound still witnesses the violation — the run already
        // missed it — and minimization truncates the irrelevant tail
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("lazy", u.clone());
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let program = Program::new(spec);
        let prop = Prop::EventuallyWithin(StepPred::fired(b), 1);
        let sloppy: Schedule = vec![Step::from_events([a]), Step::from_events([b])]
            .into_iter()
            .collect();
        assert!(
            is_witness(&program, &prop, &sloppy),
            "the b-free length-1 prefix misses the bound"
        );
        let minimal = minimize_witness(&program, &prop, &sloppy);
        assert_eq!(minimal.len(), 1);
        assert!(minimal.steps()[0].contains(a));
    }

    #[test]
    fn until_and_release_witnesses_minimize_and_revalidate() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        // until: the b step refutes both the sustain (a) and a goal
        // that never fires
        let until = Prop::UntilWithin(
            StepPred::fired(a),
            StepPred::and(StepPred::fired(a), StepPred::fired(b)),
            5,
        );
        let PropStatus::Violated(ce) = check(&program, &until, &ExploreOptions::default()) else {
            panic!("a ; b breaks the sustain");
        };
        let minimal = ce.minimized(&program, &until);
        assert!(is_witness(&program, &until, &minimal));
        assert_eq!(minimal.len(), 2, "a ; b is already minimal");
        // release: same violating shape through the safety flavor
        let release = Prop::ReleaseWithin(StepPred::fired(b), StepPred::fired(a), 5);
        let PropStatus::Violated(ce) = check(&program, &release, &ExploreOptions::default()) else {
            panic!("the b step refutes the sustained a");
        };
        let minimal = ce.minimized(&program, &release);
        assert!(is_witness(&program, &release, &minimal));
        assert_eq!(minimal.len(), 2);
    }

    #[test]
    fn liveness_witnesses_never_shrink_below_the_bound() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("lazy", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let program = Program::new(spec);
        let prop = Prop::EventuallyWithin(StepPred::fired(b), 3);
        let PropStatus::Violated(ce) = check(&program, &prop, &ExploreOptions::default()) else {
            panic!("a a a avoids b");
        };
        let minimal = ce.minimized(&program, &prop);
        assert!(minimal.len() >= 3, "length-bound witnesses keep >= k steps");
        assert!(is_witness(&program, &prop, &minimal));
    }
}
