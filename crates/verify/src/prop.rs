//! [`Prop`]: the property language of the verification layer.
//!
//! Properties quantify a [`StepPred`] over the schedules of a
//! specification: safety (`Always` / `Never`), bounded liveness
//! (`EventuallyWithin`) and deadlock-freedom. They are deliberately a
//! small, closed set — each variant compiles into an observer monitor
//! the explorer evaluates per absorbed step (see
//! [`check_props`](crate::check_props)), so every property here is
//! checkable *on the fly*, with a deterministic early stop and a
//! replayable counterexample.

use moccml_kernel::{StepPred, Universe};
use std::fmt;

/// A temporal property over the schedules of a specification.
///
/// Semantics, over maximal runs from the initial state:
///
/// * [`Always(p)`](Prop::Always) — every step of every run satisfies
///   `p`. Violated by a schedule whose *last* step refutes `p`.
/// * [`Never(p)`](Prop::Never) — no step of any run satisfies `p`
///   (sugar for `Always(¬p)`).
/// * [`EventuallyWithin(p, k)`](Prop::EventuallyWithin) — every run
///   satisfies `p` within its first `k` steps. Violated by a `p`-free
///   schedule of length `k`, or by a `p`-free schedule into a deadlock
///   (the run cannot be extended to ever satisfy `p`). Equivalent to
///   `UntilWithin(⊤, p, k)` — and checked by the same monitor.
/// * [`UntilWithin(p, q, k)`](Prop::UntilWithin) — every run fires a
///   `q`-step within its first `k` steps, with every step strictly
///   before that `q`-step satisfying `p` (bounded strong until).
///   Violated by a schedule whose last step refutes both `p` and `q`
///   while no `q`-step has occurred yet, by a `q`-free `p`-holding
///   schedule of length `k`, or by a `q`-free `p`-holding schedule
///   into a deadlock.
/// * [`ReleaseWithin(p, q, k)`](Prop::ReleaseWithin) — `q` holds on
///   every step until and including the first `p`-step, with the
///   obligation expiring (discharged) after `k` steps (bounded
///   release). Violated only by a schedule whose last step refutes
///   `q` while the obligation is still open — it is bounded safety,
///   so neither running out the bound nor deadlocking violates it.
/// * [`DeadlockFree`](Prop::DeadlockFree) — no reachable state lacks
///   an outgoing non-empty step. Violated by a schedule into a
///   deadlock state.
///
/// # Example
///
/// ```
/// use moccml_kernel::{StepPred, Universe};
/// use moccml_verify::Prop;
/// let mut u = Universe::new();
/// let (req, ack) = (u.event("req"), u.event("ack"));
/// let safety = Prop::Never(StepPred::and(StepPred::fired(req), StepPred::fired(ack)));
/// assert_eq!(safety.display(&u), "never((req && ack))");
/// let liveness = Prop::EventuallyWithin(StepPred::fired(ack), 4);
/// assert_eq!(liveness.display(&u), "eventually<=4(ack)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prop {
    /// Every step of every run satisfies the predicate.
    Always(StepPred),
    /// No step of any run satisfies the predicate.
    Never(StepPred),
    /// Every run satisfies the predicate within its first `k` steps
    /// (bounded liveness). `k = 0` is unsatisfiable by construction.
    EventuallyWithin(StepPred, usize),
    /// `until<=k(p, q)`: every run fires a `q`-step within its first
    /// `k` steps, with every step strictly before it satisfying `p`
    /// (bounded strong until). `k = 0` is unsatisfiable.
    UntilWithin(StepPred, StepPred, usize),
    /// `release<=k(p, q)`: `q` holds on every step until and including
    /// the first `p`-step, the obligation expiring after `k` steps
    /// (bounded release — safety). `k = 0` holds trivially.
    ReleaseWithin(StepPred, StepPred, usize),
    /// No reachable state is a deadlock.
    DeadlockFree,
}

impl Prop {
    /// Renders the property with event names from `universe`.
    #[must_use]
    pub fn display(&self, universe: &Universe) -> String {
        match self {
            Prop::Always(p) => format!("always({})", p.display(universe)),
            Prop::Never(p) => format!("never({})", p.display(universe)),
            Prop::EventuallyWithin(p, k) => {
                format!("eventually<={k}({})", p.display(universe))
            }
            Prop::UntilWithin(p, q, k) => {
                format!(
                    "until<={k}({}, {})",
                    p.display(universe),
                    q.display(universe)
                )
            }
            Prop::ReleaseWithin(p, q, k) => {
                format!(
                    "release<={k}({}, {})",
                    p.display(universe),
                    q.display(universe)
                )
            }
            Prop::DeadlockFree => "deadlock-free".to_owned(),
        }
    }
}

impl fmt::Display for Prop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prop::Always(p) => write!(f, "always({p})"),
            Prop::Never(p) => write!(f, "never({p})"),
            Prop::EventuallyWithin(p, k) => write!(f, "eventually<={k}({p})"),
            Prop::UntilWithin(p, q, k) => write!(f, "until<={k}({p}, {q})"),
            Prop::ReleaseWithin(p, q, k) => write!(f, "release<={k}({p}, {q})"),
            Prop::DeadlockFree => write!(f, "deadlock-free"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_names() {
        let mut u = Universe::new();
        let a = u.event("start");
        let p = Prop::Always(StepPred::fired(a));
        assert_eq!(p.display(&u), "always(start)");
        assert_eq!(p.to_string(), "always(e0)");
        assert_eq!(Prop::DeadlockFree.display(&u), "deadlock-free");
    }

    #[test]
    fn bounded_until_and_release_display() {
        let mut u = Universe::new();
        let (req, ack) = (u.event("req"), u.event("ack"));
        let until = Prop::UntilWithin(StepPred::fired(req), StepPred::fired(ack), 4);
        assert_eq!(until.display(&u), "until<=4(req, ack)");
        assert_eq!(until.to_string(), "until<=4(e0, e1)");
        let release = Prop::ReleaseWithin(StepPred::fired(ack), StepPred::fired(req), 3);
        assert_eq!(release.display(&u), "release<=3(ack, req)");
        assert_eq!(release.to_string(), "release<=3(e1, e0)");
    }
}
