//! Schedule conformance checking: does a recorded trace satisfy a
//! specification?
//!
//! This is the CoCoMoT-style workload: a log (a [`Schedule`], e.g.
//! parsed from text via
//! [`Schedule::parse_lines`](moccml_kernel::Schedule::parse_lines)) is
//! replayed step by step against a compiled [`Program`]; the verdict is
//! either full conformance or the first violating step index together
//! with the *names* of the constraints that reject it.

use moccml_engine::Program;
use moccml_kernel::Schedule;

/// The outcome of replaying a schedule against a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every step of the schedule is acceptable in sequence.
    Conforms,
    /// The schedule violates the specification.
    Violation {
        /// Index of the first violating step.
        step: usize,
        /// Names of the constraints whose current formula rejects that
        /// step, in constraint order.
        violated: Vec<String>,
    },
}

impl Verdict {
    /// Whether the schedule conforms.
    #[must_use]
    pub fn conforms(&self) -> bool {
        matches!(self, Verdict::Conforms)
    }
}

/// Replays `schedule` from the initial state of `program` and reports
/// the first violation, if any.
///
/// Empty (stuttering) steps are always acceptable and merely advance
/// time; events no constraint mentions are free. The replay runs on a
/// fresh [`Cursor`](moccml_engine::Cursor), so checking a trace never
/// perturbs other executions of the shared program.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::Program;
/// use moccml_kernel::{Schedule, Specification, Universe};
/// use moccml_verify::{conformance, Verdict};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u.clone());
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
/// let program = Program::new(spec);
///
/// let good = Schedule::parse_lines("a\nb\na\n", &u).expect("parses");
/// assert!(conformance(&program, &good).conforms());
///
/// let bad = Schedule::parse_lines("a\na\n", &u).expect("parses");
/// match conformance(&program, &bad) {
///     Verdict::Violation { step, violated } => {
///         assert_eq!(step, 1);
///         assert_eq!(violated, vec!["a~b".to_owned()]);
///     }
///     Verdict::Conforms => unreachable!("a a breaks the alternation"),
/// }
/// ```
#[must_use]
pub fn conformance(program: &Program, schedule: &Schedule) -> Verdict {
    let mut cursor = program.cursor();
    for (i, step) in schedule.iter().enumerate() {
        if !cursor.accepts(step) {
            return Verdict::Violation {
                step: i,
                violated: cursor.violated_constraints(step),
            };
        }
        cursor.fire(step).expect("accepted step fires");
    }
    Verdict::Conforms
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Precedence};
    use moccml_kernel::{Specification, Step, Universe};

    #[test]
    fn empty_schedule_conforms() {
        let u = Universe::new();
        let program = Program::new(Specification::new("empty", u));
        assert_eq!(conformance(&program, &Schedule::new()), Verdict::Conforms);
    }

    #[test]
    fn stuttering_steps_are_acceptable() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        let sched: Schedule = vec![Step::new(), Step::from_events([a]), Step::new()]
            .into_iter()
            .collect();
        assert!(conformance(&program, &sched).conforms());
    }

    #[test]
    fn violation_names_every_rejecting_constraint() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("two", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        // {b} first: rejected by the precedence; the alternation
        // expects a first too
        let sched: Schedule = vec![Step::from_events([b])].into_iter().collect();
        match conformance(&program, &sched) {
            Verdict::Violation { step, violated } => {
                assert_eq!(step, 0);
                assert_eq!(violated, vec!["a<b".to_owned(), "a~b".to_owned()]);
            }
            Verdict::Conforms => panic!("b-first violates both constraints"),
        }
    }

    #[test]
    fn violation_reports_the_first_bad_step_only() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        let sched: Schedule = vec![
            Step::from_events([a]),
            Step::from_events([a]), // violates here
            Step::from_events([b]),
        ]
        .into_iter()
        .collect();
        match conformance(&program, &sched) {
            Verdict::Violation { step, .. } => assert_eq!(step, 1),
            Verdict::Conforms => panic!("double a violates"),
        }
    }
}
