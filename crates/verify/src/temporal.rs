//! The shared bounded-temporal core: one semantics for
//! `EventuallyWithin`, `UntilWithin` and `ReleaseWithin`, consumed by
//! both the exhaustive checker's level-synchronized monitor
//! (`check.rs`) and the per-trace [`TraceEvaluator`] the statistical
//! model checker samples with.
//!
//! Every bounded-temporal property reduces to one *obligation* that is
//! open at the initial state and is resolved by classifying each step
//! of a run ([`TemporalSpec::classify`]):
//!
//! * [`StepClass::Discharge`] — the step fulfils the obligation; the
//!   rest of the run is unconstrained.
//! * [`StepClass::Carry`] — the step is consistent with the obligation
//!   staying open; the next step is classified in turn.
//! * [`StepClass::Violate`] — the step refutes the property outright.
//!
//! What happens when a run exhausts the bound `k`, or deadlocks, with
//! the obligation still open depends on the flavor: the *liveness*
//! properties (`eventually<=k`, `until<=k`) are violated — the
//! obligated step can no longer arrive in time — while the *safety*
//! property (`release<=k`) is discharged. Having exactly one
//! classification function keeps the exhaustive verdict and the
//! per-trace verdict definitionally identical, which is what lets the
//! statistical checker's witnesses re-validate through
//! [`is_witness`](crate::is_witness) and the exhaustive minimizer.

use crate::prop::Prop;
use moccml_kernel::{Step, StepPred};

/// How one step of a run relates to an open bounded-temporal
/// obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepClass {
    /// The obligation is fulfilled by this step.
    Discharge,
    /// The obligation stays open past this step.
    Carry,
    /// The property is violated by this step.
    Violate,
}

/// The flavor of a bounded-temporal obligation: what expiry (bound
/// reached) and deadlock mean while it is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TemporalKind {
    /// `eventually<=k` / `until<=k`: liveness — expiry and deadlock
    /// with the obligation open are violations.
    Until,
    /// `release<=k`: safety — expiry and deadlock discharge the
    /// obligation.
    Release,
}

/// One compiled bounded-temporal obligation: the single semantic core
/// behind `EventuallyWithin`, `UntilWithin` and `ReleaseWithin`.
#[derive(Debug, Clone)]
pub(crate) struct TemporalSpec {
    kind: TemporalKind,
    /// Predicate every step must satisfy while the obligation is open:
    /// `p` for `until<=k(p, q)` (`None` = ⊤ for `eventually<=k`), `q`
    /// for `release<=k(p, q)`.
    sustain: Option<StepPred>,
    /// Predicate whose occurrence discharges the obligation: `q` for
    /// `until<=k(p, q)` / `eventually<=k(q)`, `p` for
    /// `release<=k(p, q)`.
    fulfil: StepPred,
    /// Step bound `k`.
    bound: usize,
}

impl TemporalSpec {
    /// Compiles a bounded-temporal [`Prop`] variant; `None` for the
    /// safety/deadlock variants, which have no obligation to track.
    pub(crate) fn from_prop(prop: &Prop) -> Option<TemporalSpec> {
        match prop {
            Prop::EventuallyWithin(q, k) => Some(TemporalSpec {
                kind: TemporalKind::Until,
                sustain: None,
                fulfil: q.clone(),
                bound: *k,
            }),
            Prop::UntilWithin(p, q, k) => Some(TemporalSpec {
                kind: TemporalKind::Until,
                sustain: Some(p.clone()),
                fulfil: q.clone(),
                bound: *k,
            }),
            Prop::ReleaseWithin(p, q, k) => Some(TemporalSpec {
                kind: TemporalKind::Release,
                sustain: Some(q.clone()),
                fulfil: p.clone(),
                bound: *k,
            }),
            Prop::Always(_) | Prop::Never(_) | Prop::DeadlockFree => None,
        }
    }

    /// The step bound `k`.
    pub(crate) fn bound(&self) -> usize {
        self.bound
    }

    /// Whether expiry/deadlock with the obligation open violates the
    /// property (the liveness flavors).
    pub(crate) fn liveness(&self) -> bool {
        self.kind == TemporalKind::Until
    }

    /// Classifies one step against the open obligation.
    ///
    /// `until` checks fulfilment first (the `q`-step itself need not
    /// satisfy `p` — "strictly before" semantics); `release` checks
    /// the sustained `q` first (the discharging `p`-step must still
    /// satisfy `q` — "until and including" semantics).
    pub(crate) fn classify(&self, step: &Step) -> StepClass {
        match self.kind {
            TemporalKind::Until => {
                if self.fulfil.eval(step) {
                    StepClass::Discharge
                } else if self.sustain.as_ref().is_none_or(|p| p.eval(step)) {
                    StepClass::Carry
                } else {
                    StepClass::Violate
                }
            }
            TemporalKind::Release => {
                let q = self.sustain.as_ref().expect("release sustains q");
                if !q.eval(step) {
                    StepClass::Violate
                } else if self.fulfil.eval(step) {
                    StepClass::Discharge
                } else {
                    StepClass::Carry
                }
            }
        }
    }
}

/// The running verdict of a [`TraceEvaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStatus {
    /// The bounded run seen so far neither violates nor definitively
    /// satisfies the property.
    Undecided,
    /// The property is violated on this run — the violation is a
    /// *prefix* property, so the schedule up to and including the
    /// deciding step is an [`is_witness`](crate::is_witness)-valid
    /// witness.
    Violated,
    /// The property can no longer be violated on any extension of this
    /// run.
    Satisfied,
}

/// Evaluates one [`Prop`] along one concrete run, step by step — the
/// per-trace half of the shared bounded-temporal monitor core, and the
/// verdict source of the statistical model checker.
///
/// Feed every fired step to [`observe`](TraceEvaluator::observe); when
/// the run ends (deadlock or truncation), call
/// [`conclude`](TraceEvaluator::conclude) for the final verdict. The
/// bounded-run semantics agree with the exhaustive checker: a run
/// violates the property iff its schedule (cut at the deciding step)
/// is accepted by [`is_witness`](crate::is_witness).
///
/// # Example
///
/// ```
/// use moccml_kernel::{Step, StepPred, Universe};
/// use moccml_verify::{Prop, TraceEvaluator, TraceStatus};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let prop = Prop::UntilWithin(StepPred::fired(a), StepPred::fired(b), 3);
/// let mut eval = TraceEvaluator::new(&prop);
/// let step_a: Step = [a].into_iter().collect();
/// let step_b: Step = [b].into_iter().collect();
/// assert_eq!(eval.observe(&step_a), TraceStatus::Undecided);
/// assert_eq!(eval.observe(&step_b), TraceStatus::Satisfied);
/// assert!(!eval.conclude(false), "a ; b fulfils the until");
/// ```
#[derive(Debug, Clone)]
pub struct TraceEvaluator {
    kind: EvalKind,
    steps: usize,
    status: TraceStatus,
}

#[derive(Debug, Clone)]
enum EvalKind {
    /// `Always(pred)` (and `Never(p)` as `Always(¬p)`): violated by
    /// the first step refuting `pred`.
    Safety { pred: StepPred },
    /// Violated iff the run deadlocks.
    DeadlockFree,
    /// A bounded-temporal obligation.
    Temporal(TemporalSpec),
}

impl TraceEvaluator {
    /// Compiles `prop` into a fresh evaluator positioned at the start
    /// of a run.
    #[must_use]
    pub fn new(prop: &Prop) -> TraceEvaluator {
        let kind = match prop {
            Prop::Always(p) => EvalKind::Safety { pred: p.clone() },
            Prop::Never(p) => EvalKind::Safety {
                pred: StepPred::negate(p.clone()),
            },
            Prop::DeadlockFree => EvalKind::DeadlockFree,
            temporal => EvalKind::Temporal(
                TemporalSpec::from_prop(temporal).expect("remaining variants are temporal"),
            ),
        };
        let mut eval = TraceEvaluator {
            kind,
            steps: 0,
            status: TraceStatus::Undecided,
        };
        // a zero bound resolves before any step: unsatisfiable for the
        // liveness flavors, trivially satisfied for release
        if let EvalKind::Temporal(spec) = &eval.kind {
            if spec.bound() == 0 {
                eval.status = if spec.liveness() {
                    TraceStatus::Violated
                } else {
                    TraceStatus::Satisfied
                };
            }
        }
        eval
    }

    /// The verdict so far.
    #[must_use]
    pub fn status(&self) -> TraceStatus {
        self.status
    }

    /// Number of steps observed so far; once the status is decided,
    /// the steps up to this count form the deciding schedule prefix.
    #[must_use]
    pub fn steps_observed(&self) -> usize {
        self.steps
    }

    /// Feeds the next fired step of the run; returns the (possibly
    /// newly decided) status. Steps observed after a decision do not
    /// change it.
    pub fn observe(&mut self, step: &Step) -> TraceStatus {
        if self.status != TraceStatus::Undecided {
            return self.status;
        }
        self.steps += 1;
        match &self.kind {
            EvalKind::Safety { pred } => {
                if !pred.eval(step) {
                    self.status = TraceStatus::Violated;
                }
            }
            EvalKind::DeadlockFree => {}
            EvalKind::Temporal(spec) => {
                match spec.classify(step) {
                    StepClass::Discharge => self.status = TraceStatus::Satisfied,
                    StepClass::Violate => self.status = TraceStatus::Violated,
                    StepClass::Carry => {
                        // the obligation survived this step; expiry at
                        // the bound resolves it
                        if self.steps == spec.bound() {
                            self.status = if spec.liveness() {
                                TraceStatus::Violated
                            } else {
                                TraceStatus::Satisfied
                            };
                        }
                    }
                }
            }
        }
        self.status
    }

    /// Ends the run (`deadlocked` tells a maximal run from a truncated
    /// one) and returns whether the property is **violated** on it.
    ///
    /// An undecided safety/release run is not violated (the predicate
    /// held on every observed step); an undecided liveness obligation
    /// is violated only if the run deadlocked — a truncated run could
    /// still have fulfilled it, and counts as conforming under the
    /// bounded-run semantics.
    pub fn conclude(&mut self, deadlocked: bool) -> bool {
        if self.status == TraceStatus::Undecided {
            self.status = match &self.kind {
                EvalKind::DeadlockFree if deadlocked => TraceStatus::Violated,
                EvalKind::Temporal(spec) if spec.liveness() && deadlocked => TraceStatus::Violated,
                _ => TraceStatus::Satisfied,
            };
        }
        self.status == TraceStatus::Violated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_kernel::Universe;

    fn step(events: &[moccml_kernel::EventId]) -> Step {
        events.iter().copied().collect()
    }

    #[test]
    fn until_discharges_carries_and_violates() {
        let mut u = Universe::new();
        let (p, q, x) = (u.event("p"), u.event("q"), u.event("x"));
        let spec = TemporalSpec::from_prop(&Prop::UntilWithin(
            StepPred::fired(p),
            StepPred::fired(q),
            5,
        ))
        .expect("temporal");
        assert_eq!(spec.classify(&step(&[q])), StepClass::Discharge);
        // the q-step need not satisfy p
        assert_eq!(spec.classify(&step(&[q, x])), StepClass::Discharge);
        assert_eq!(spec.classify(&step(&[p])), StepClass::Carry);
        assert_eq!(spec.classify(&step(&[x])), StepClass::Violate);
    }

    #[test]
    fn release_requires_q_on_the_discharging_step() {
        let mut u = Universe::new();
        let (p, q) = (u.event("p"), u.event("q"));
        let spec = TemporalSpec::from_prop(&Prop::ReleaseWithin(
            StepPred::fired(p),
            StepPred::fired(q),
            5,
        ))
        .expect("temporal");
        assert_eq!(spec.classify(&step(&[q])), StepClass::Carry);
        assert_eq!(spec.classify(&step(&[p, q])), StepClass::Discharge);
        // p without q is a violation, not a discharge
        assert_eq!(spec.classify(&step(&[p])), StepClass::Violate);
    }

    #[test]
    fn eventually_is_until_with_top() {
        let mut u = Universe::new();
        let (q, x) = (u.event("q"), u.event("x"));
        let spec = TemporalSpec::from_prop(&Prop::EventuallyWithin(StepPred::fired(q), 3))
            .expect("temporal");
        assert_eq!(spec.classify(&step(&[q])), StepClass::Discharge);
        assert_eq!(spec.classify(&step(&[x])), StepClass::Carry);
    }

    #[test]
    fn trace_evaluator_expires_liveness_at_the_bound() {
        let mut u = Universe::new();
        let (q, x) = (u.event("q"), u.event("x"));
        let prop = Prop::EventuallyWithin(StepPred::fired(q), 2);
        let mut eval = TraceEvaluator::new(&prop);
        assert_eq!(eval.observe(&step(&[x])), TraceStatus::Undecided);
        assert_eq!(eval.observe(&step(&[x])), TraceStatus::Violated);
        assert!(eval.conclude(false));
        assert_eq!(eval.steps_observed(), 2);
    }

    #[test]
    fn trace_evaluator_expires_release_satisfied() {
        let mut u = Universe::new();
        let (p, q) = (u.event("p"), u.event("q"));
        let prop = Prop::ReleaseWithin(StepPred::fired(p), StepPred::fired(q), 2);
        let mut eval = TraceEvaluator::new(&prop);
        assert_eq!(eval.observe(&step(&[q])), TraceStatus::Undecided);
        assert_eq!(eval.observe(&step(&[q])), TraceStatus::Satisfied);
        assert!(!eval.conclude(false));
    }

    #[test]
    fn deadlock_wedges_open_liveness_but_not_release() {
        let mut u = Universe::new();
        let (p, q) = (u.event("p"), u.event("q"));
        let until = Prop::UntilWithin(StepPred::fired(p), StepPred::fired(q), 9);
        let mut eval = TraceEvaluator::new(&until);
        eval.observe(&step(&[p]));
        assert!(eval.conclude(true), "deadlock while obligated");
        let release = Prop::ReleaseWithin(StepPred::fired(p), StepPred::fired(q), 9);
        let mut eval = TraceEvaluator::new(&release);
        eval.observe(&step(&[q]));
        assert!(!eval.conclude(true), "release is safety");
    }

    #[test]
    fn truncation_leaves_liveness_unviolated() {
        let mut u = Universe::new();
        let q = u.event("q");
        let x = u.event("x");
        let mut eval = TraceEvaluator::new(&Prop::EventuallyWithin(StepPred::fired(q), 10));
        eval.observe(&step(&[x]));
        assert!(!eval.conclude(false), "truncated runs count as conforming");
    }

    #[test]
    fn zero_bounds_resolve_immediately() {
        let mut u = Universe::new();
        let q = u.event("q");
        let ev = TraceEvaluator::new(&Prop::EventuallyWithin(StepPred::fired(q), 0));
        assert_eq!(ev.status(), TraceStatus::Violated);
        let rel = TraceEvaluator::new(&Prop::ReleaseWithin(
            StepPred::fired(q),
            StepPred::fired(q),
            0,
        ));
        assert_eq!(rel.status(), TraceStatus::Satisfied);
    }

    #[test]
    fn safety_and_deadlock_per_trace() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut never = TraceEvaluator::new(&Prop::Never(StepPred::fired(b)));
        assert_eq!(never.observe(&step(&[a])), TraceStatus::Undecided);
        assert_eq!(never.observe(&step(&[b])), TraceStatus::Violated);
        let mut df = TraceEvaluator::new(&Prop::DeadlockFree);
        df.observe(&step(&[a]));
        assert!(df.conclude(true));
        let mut df2 = TraceEvaluator::new(&Prop::DeadlockFree);
        df2.observe(&step(&[a]));
        assert!(!df2.conclude(false));
    }
}
