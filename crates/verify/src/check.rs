//! On-the-fly property checking over the exploration engine.
//!
//! [`check_props`] compiles each [`Prop`] into an observer monitor and
//! runs them *inside* the explorer's canonicalization pass, through the
//! [`ExploreVisitor`](moccml_engine::ExploreVisitor) hook: every
//! absorbed transition, deadlock and level boundary is fed to the
//! monitors in canonical order, so the BFS terminates at the first
//! violating level instead of materialising the full state-space — and
//! does so **deterministically for every worker count**, because the
//! visitor sequence itself is worker-count-independent.
//!
//! Violations come back as [`Counterexample`]s: a shortest replayable
//! [`Schedule`] from the initial state, reconstructed from the parent
//! links the monitors maintain and re-validated through a fresh
//! [`Cursor`](moccml_engine::Cursor) before it is returned.

use crate::conformance::{conformance, Verdict};
use crate::prop::Prop;
use crate::temporal::{StepClass, TemporalSpec};
use moccml_engine::{ExploreOptions, ExploreVisitor, Program, VisitControl};
use moccml_kernel::{Schedule, Step, StepPred};
use std::collections::{BTreeSet, HashMap, HashSet};

/// A violation witness: a shortest acceptable schedule from the
/// initial state whose execution exhibits the violation.
///
/// For a safety violation the *last* step of the schedule is the
/// offending one; for deadlock-freedom the schedule ends in the
/// deadlock state; for bounded liveness the schedule is a maximal (or
/// length-`k`) predicate-free prefix. In every case the schedule
/// replays cleanly through a fresh cursor — [`check_props`] asserts
/// this before returning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The replayable schedule from the initial state.
    pub schedule: Schedule,
    /// Index (in the explored [`StateSpace`](moccml_engine::StateSpace))
    /// of the state the schedule reaches.
    pub state: usize,
}

impl Counterexample {
    /// Whether the schedule replays step by step through a fresh cursor
    /// of `program` — the re-validation contract of every
    /// counterexample this crate returns.
    #[must_use]
    pub fn replays_on(&self, program: &Program) -> bool {
        conformance(program, &self.schedule) == Verdict::Conforms
    }
}

/// The verdict for one property after a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropStatus {
    /// The property holds on the fully explored state-space.
    Holds,
    /// The property is violated; the counterexample is a shortest
    /// witness.
    Violated(Counterexample),
    /// The exploration stopped early (a bound was hit, or another
    /// property's violation ended the run) before this property could
    /// be decided.
    Undetermined,
}

impl PropStatus {
    /// Whether this status carries a violation.
    #[must_use]
    pub fn is_violated(&self) -> bool {
        matches!(self, PropStatus::Violated(_))
    }
}

/// The result of [`check_props`]: one [`PropStatus`] per property, in
/// input order, plus the exploration effort it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Per-property statuses, parallel to the `props` slice.
    pub statuses: Vec<PropStatus>,
    /// States interned before the check ended — the early-stop metric:
    /// strictly fewer than a full exploration whenever a violation cut
    /// the BFS short.
    pub states_visited: usize,
    /// Transitions absorbed before the check ended.
    pub transitions_visited: usize,
    /// Whether the whole reachable space was explored (no bound hit,
    /// no early stop with frontier remaining).
    pub completed: bool,
}

impl CheckReport {
    /// The first violated property, as `(index, counterexample)`.
    #[must_use]
    pub fn first_violation(&self) -> Option<(usize, &Counterexample)> {
        self.statuses.iter().enumerate().find_map(|(i, s)| match s {
            PropStatus::Violated(ce) => Some((i, ce)),
            _ => None,
        })
    }

    /// Whether any property was violated.
    #[must_use]
    pub fn any_violated(&self) -> bool {
        self.statuses.iter().any(PropStatus::is_violated)
    }
}

/// Checks several properties in one exploration pass, on the fly.
///
/// The explorer runs under `options` (bounds, solver, `workers` — the
/// result is identical for every worker count) and stops at the first
/// level boundary where at least one property is violated, or as soon
/// as every property is resolved. Properties left undecided by an
/// early stop report [`PropStatus::Undetermined`].
///
/// # Panics
///
/// Panics if a reconstructed counterexample fails to replay through a
/// fresh cursor — that would be an engine determinism bug, not a user
/// error.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{ExploreOptions, Program};
/// use moccml_kernel::{Specification, StepPred, Universe};
/// use moccml_verify::{check_props, Prop, PropStatus};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
/// let program = Program::new(spec);
///
/// let props = [
///     Prop::DeadlockFree,                                  // holds
///     Prop::Never(StepPred::fired(b)),                     // violated at depth 2
/// ];
/// let report = check_props(&program, &props, &ExploreOptions::default());
/// assert_eq!(report.statuses[0], PropStatus::Holds);
/// let (_, ce) = report.first_violation().expect("b eventually fires");
/// assert_eq!(ce.schedule.len(), 2); // a then b — the shortest witness
/// ```
#[must_use]
pub fn check_props(program: &Program, props: &[Prop], options: &ExploreOptions) -> CheckReport {
    run_check(program, props, options, None)
}

/// A streaming progress callback for [`check_props_observed`]: called
/// with `(states, transitions, depth)` at every explorer checkpoint —
/// once per [`PROGRESS_INTERVAL`](moccml_engine::PROGRESS_INTERVAL)
/// absorbed transitions and once per level boundary. Returning
/// [`VisitControl::Stop`] aborts the check cooperatively: the report
/// comes back with [`PropStatus::Undetermined`] for every property the
/// absorbed prefix had not already decided.
pub type ProgressFn<'a> = dyn FnMut(usize, usize, usize) -> VisitControl + 'a;

/// [`check_props`] with a streaming [`ProgressFn`] — the plumbing a
/// long-running service needs for progress events, wall-clock timeouts
/// and cooperative cancellation.
///
/// The callback's [`VisitControl::Stop`] is threaded into the explorer
/// exactly like a monitor's own early stop, so an aborted check leaves
/// the worker pool healthy; any violation recorded before the abort is
/// still returned (with its replay-validated counterexample), because
/// every absorbed transition is real regardless of where the BFS ends.
///
/// # Panics
///
/// Panics if a reconstructed counterexample fails to replay through a
/// fresh cursor — see [`check_props`].
#[must_use]
pub fn check_props_observed(
    program: &Program,
    props: &[Prop],
    options: &ExploreOptions,
    progress: &mut ProgressFn,
) -> CheckReport {
    run_check(program, props, options, Some(progress))
}

fn run_check<'a>(
    program: &Program,
    props: &[Prop],
    options: &ExploreOptions,
    progress: Option<&'a mut ProgressFn<'a>>,
) -> CheckReport {
    // phase span: the explorer's own `explore` span nests inside it
    let _span = options.recorder.span("check");
    let track_adj = props.iter().any(|p| {
        matches!(
            p,
            Prop::EventuallyWithin(..) | Prop::UntilWithin(..) | Prop::ReleaseWithin(..)
        )
    });
    let mut visitor = CheckVisitor {
        monitors: props.iter().map(Monitor::new).collect(),
        shared: Shared::new(track_adj),
        progress,
    };
    let space = program.explore_with(options, &mut visitor);
    let CheckVisitor {
        mut monitors,
        shared,
        ..
    } = visitor;
    let completed = !space.truncated();
    let statuses: Vec<PropStatus> = monitors
        .iter_mut()
        .map(|m| m.resolve(completed, &shared))
        .collect();
    for (prop, status) in props.iter().zip(&statuses) {
        if let PropStatus::Violated(ce) = status {
            assert!(
                ce.replays_on(program),
                "counterexample for `{prop}` does not replay: {}",
                ce.schedule
            );
        }
    }
    CheckReport {
        statuses,
        states_visited: space.state_count(),
        transitions_visited: shared.transitions,
        completed,
    }
}

/// Checks a single property — [`check_props`] for one [`Prop`].
#[must_use]
pub fn check(program: &Program, prop: &Prop, options: &ExploreOptions) -> PropStatus {
    check_props(program, std::slice::from_ref(prop), options)
        .statuses
        .pop()
        .expect("one prop in, one status out")
}

/// Options for [`check_with`]: the exploration bounds plus the opt-in
/// cone-of-influence slice.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    explore: ExploreOptions,
    slice: bool,
}

impl CheckOptions {
    /// Default exploration bounds, slicing off.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Uses `explore` as the exploration bounds.
    #[must_use]
    pub fn with_explore(mut self, explore: ExploreOptions) -> Self {
        self.explore = explore;
        self
    }

    /// Enables (or disables) cone-of-influence slicing. When enabled
    /// and the property is eligible (see [`sliceable_events`]),
    /// [`check_with`] explores only the constraints transitively
    /// sharing events with the property — strictly fewer states
    /// whenever the spec has independent parts.
    #[must_use]
    pub fn with_slice(mut self, slice: bool) -> Self {
        self.slice = slice;
        self
    }

    /// The exploration bounds.
    #[must_use]
    pub fn explore(&self) -> &ExploreOptions {
        &self.explore
    }

    /// Whether slicing is enabled.
    #[must_use]
    pub fn slice(&self) -> bool {
        self.slice
    }
}

/// The seed events for cone-of-influence slicing of `prop`, or `None`
/// when slicing is not verdict-preserving for it.
///
/// Slicing is sound exactly for the *stutter-invariant safety*
/// properties: constraints outside the cone only ever add steps that
/// are invisible to the predicate (they fire no cone event), so the
/// predicate must not change verdict on such steps:
///
/// * `Always(p)` with `p(∅) = true` — a step over foreign events
///   satisfies `p`, so dropping or adding foreign behaviour cannot
///   introduce or mask a violation;
/// * `Never(p)` with `p(∅) = false` — symmetric;
/// * everything else (the bounded-temporal properties
///   `EventuallyWithin`/`UntilWithin`/`ReleaseWithin`, whose bounds
///   count foreign steps too; `DeadlockFree`, where a deadlock is a
///   *joint* wedge of cone and remainder; polarity-mismatched
///   `Always`/`Never`) must be checked on the full program.
#[must_use]
pub fn sliceable_events(prop: &Prop) -> Option<Vec<moccml_kernel::EventId>> {
    let empty = Step::new();
    let eligible = match prop {
        Prop::Always(p) => p.eval(&empty),
        Prop::Never(p) => !p.eval(&empty),
        Prop::EventuallyWithin(..)
        | Prop::UntilWithin(..)
        | Prop::ReleaseWithin(..)
        | Prop::DeadlockFree => false,
    };
    match prop {
        Prop::Always(p) | Prop::Never(p) if eligible => Some(p.events().iter().collect()),
        _ => None,
    }
}

/// Checks a single property with [`CheckOptions`], returning the full
/// [`CheckReport`] (so callers can compare exploration effort).
///
/// With [`CheckOptions::with_slice`] enabled and an eligible property
/// (see [`sliceable_events`]), the check runs on
/// [`Program::slice`] of the property's events instead of the full
/// program. The verdict is identical; a violation's witness has the
/// same (shortest) length and replays on the **full** program, because
/// out-of-cone constraints stutter through every step of the slice —
/// this is re-asserted before returning. Witnesses are canonical *for
/// the program actually explored*, so the sliced witness need not be
/// byte-identical to the unsliced one.
///
/// # Panics
///
/// Panics if a counterexample fails to replay (see [`check_props`]) —
/// including, for sliced runs, on the full program.
#[must_use]
pub fn check_with(program: &Program, prop: &Prop, options: &CheckOptions) -> CheckReport {
    if options.slice() {
        if let Some(seeds) = sliceable_events(prop) {
            let sliced = {
                let _span = options.explore().recorder.span("slice");
                program.slice(&seeds)
            };
            let full_count = program.specification().constraint_count();
            if sliced.specification().constraint_count() < full_count {
                let report = check_props(&sliced, std::slice::from_ref(prop), options.explore());
                for status in &report.statuses {
                    if let PropStatus::Violated(ce) = status {
                        assert!(
                            ce.replays_on(program),
                            "sliced counterexample for `{prop}` does not replay on the \
                             full program: {}",
                            ce.schedule
                        );
                    }
                }
                return report;
            }
        }
    }
    check_props(program, std::slice::from_ref(prop), options.explore())
}

/// Exploration bookkeeping shared by all monitors: shortest-path parent
/// links (for counterexample reconstruction), the adjacency the
/// bounded-temporal propagation walks (only populated when a temporal
/// monitor is present — pure safety/deadlock checks skip that memory), the
/// known deadlock states, and whether the `max_states` bound has
/// dropped any transition yet (poisoning "nothing reachable"
/// conclusions).
struct Shared {
    parents: Vec<Option<(usize, Step)>>,
    adj: Vec<Vec<(Step, usize)>>,
    track_adj: bool,
    deadlocks: HashSet<usize>,
    transitions: usize,
    dropped: bool,
}

impl Shared {
    fn new(track_adj: bool) -> Self {
        Shared {
            parents: vec![None],
            adj: vec![Vec::new()],
            track_adj,
            deadlocks: HashSet::new(),
            transitions: 0,
            dropped: false,
        }
    }

    fn ensure(&mut self, state: usize) {
        if self.parents.len() <= state {
            self.parents.resize(state + 1, None);
            self.adj.resize(state + 1, Vec::new());
        }
    }

    fn note_transition(&mut self, source: usize, step: &Step, target: usize) {
        self.ensure(source.max(target));
        // the first transition into a state, in canonical BFS absorption
        // order, is a shortest path to it
        if target != 0 && self.parents[target].is_none() {
            self.parents[target] = Some((source, step.clone()));
        }
        if self.track_adj {
            self.adj[source].push((step.clone(), target));
        }
        self.transitions += 1;
    }

    /// The shortest schedule from the initial state to `state`, via the
    /// recorded parent links.
    fn path_to(&self, state: usize) -> Schedule {
        schedule_through_parents(&self.parents, state)
    }
}

/// Reconstructs the schedule from the root to `state` by walking
/// first-discovery parent links (`parents[s] = (predecessor, step)`,
/// `None` at the root). Shared by the on-the-fly checker and the
/// equivalence product explorer.
pub(crate) fn schedule_through_parents(
    parents: &[Option<(usize, Step)>],
    state: usize,
) -> Schedule {
    let mut steps = Vec::new();
    let mut s = state;
    while let Some((prev, step)) = &parents[s] {
        steps.push(step.clone());
        s = *prev;
    }
    steps.reverse();
    steps.into_iter().collect()
}

/// One compiled property monitor.
enum Monitor {
    /// `Always(pred)` (and `Never(p)` as `Always(¬p)`): violated by the
    /// first absorbed transition whose step refutes `pred`.
    Safety {
        pred: StepPred,
        violation: Option<(usize, Step, usize)>,
    },
    /// Violated by the first reported deadlock state.
    DeadlockFree { violation: Option<usize> },
    /// A bounded-temporal obligation
    /// (`eventually<=k`/`until<=k`/`release<=k`), tracked by
    /// level-synchronized propagation of the obligation-open state set
    /// over the shared [`TemporalSpec`] step classification.
    Temporal(Temporal),
}

impl Monitor {
    fn new(prop: &Prop) -> Self {
        match prop {
            Prop::Always(p) => Monitor::Safety {
                pred: p.clone(),
                violation: None,
            },
            Prop::Never(p) => Monitor::Safety {
                pred: StepPred::negate(p.clone()),
                violation: None,
            },
            Prop::DeadlockFree => Monitor::DeadlockFree { violation: None },
            temporal => Monitor::Temporal(Temporal::new(
                TemporalSpec::from_prop(temporal).expect("remaining variants are temporal"),
            )),
        }
    }

    fn violated(&self) -> bool {
        match self {
            Monitor::Safety { violation, .. } => violation.is_some(),
            Monitor::DeadlockFree { violation } => violation.is_some(),
            Monitor::Temporal(tm) => {
                matches!(
                    tm.outcome,
                    Some(
                        TemporalOutcome::Prefix { .. }
                            | TemporalOutcome::Wedged { .. }
                            | TemporalOutcome::Edge { .. }
                    )
                )
            }
        }
    }

    fn resolved(&self) -> bool {
        match self {
            Monitor::Temporal(tm) => tm.outcome.is_some(),
            _ => self.violated(),
        }
    }

    fn resolve(&mut self, completed: bool, shared: &Shared) -> PropStatus {
        match self {
            Monitor::Safety { violation, .. } => match violation.take() {
                Some((source, step, target)) => {
                    let mut schedule = shared.path_to(source);
                    schedule.push(step);
                    PropStatus::Violated(Counterexample {
                        schedule,
                        state: target,
                    })
                }
                None if completed => PropStatus::Holds,
                None => PropStatus::Undetermined,
            },
            Monitor::DeadlockFree { violation } => match violation.take() {
                Some(state) => PropStatus::Violated(Counterexample {
                    schedule: shared.path_to(state),
                    state,
                }),
                None if completed => PropStatus::Holds,
                None => PropStatus::Undetermined,
            },
            Monitor::Temporal(tm) => {
                tm.finish(completed, shared);
                match &tm.outcome {
                    Some(TemporalOutcome::Holds) => PropStatus::Holds,
                    Some(TemporalOutcome::Prefix { state }) => {
                        PropStatus::Violated(Counterexample {
                            schedule: tm.witness(*state, tm.depth),
                            state: *state,
                        })
                    }
                    Some(TemporalOutcome::Wedged { state, depth }) => {
                        PropStatus::Violated(Counterexample {
                            schedule: tm.witness(*state, *depth),
                            state: *state,
                        })
                    }
                    Some(TemporalOutcome::Edge {
                        source,
                        step,
                        depth,
                        target,
                    }) => {
                        let mut schedule = tm.witness(*source, *depth);
                        schedule.push(step.clone());
                        PropStatus::Violated(Counterexample {
                            schedule,
                            state: *target,
                        })
                    }
                    Some(TemporalOutcome::Inconclusive) | None => PropStatus::Undetermined,
                }
            }
        }
    }
}

/// How a [`Temporal`] monitor resolved.
enum TemporalOutcome {
    /// Every obligation-open path resolved without a violation: the
    /// property holds. Only concluded while the absorbed transition
    /// relation is still complete (no `max_states` drop yet): the
    /// propagated set under-approximates afterwards, so neither an
    /// empty set nor a clean bound expiry would prove anything.
    Holds,
    /// (Liveness only.) An obligation-open prefix of full length
    /// `bound` exists, ending in `state`.
    Prefix { state: usize },
    /// (Liveness only.) An obligation-open path of length
    /// `depth < bound` ends in deadlock `state`: the run can never
    /// fulfil the obligation.
    Wedged { state: usize, depth: usize },
    /// An obligation-open path of length `depth` from `source` takes a
    /// [`StepClass::Violate`] step into `target` — an `until` step
    /// refuting both `p` and `q`, or a `release` step refuting `q`.
    Edge {
        source: usize,
        step: Step,
        depth: usize,
        target: usize,
    },
    /// The open set resolved *after* the `max_states` bound started
    /// dropping transitions: no violation was found, but "holds" would
    /// be unsound and nothing more can be learned from the incomplete
    /// graph — reported as [`PropStatus::Undetermined`].
    Inconclusive,
}

/// The shared bounded-temporal monitor, parameterized by a
/// [`TemporalSpec`] — one implementation for
/// `EventuallyWithin`, `UntilWithin` and `ReleaseWithin`.
///
/// Invariant: `current` is S_d, the set of states reachable from the
/// initial state by a schedule of exactly `depth` steps each
/// classified [`StepClass::Carry`] (the obligation stayed open);
/// `levels[j]` records, for every member of S_j, the predecessor link
/// that discovered it (for witness reconstruction). S_{d+1} only needs
/// the outgoing edges of S_d's members — all of BFS depth ≤ d, hence
/// fully absorbed by the level-`d` boundary — so the propagation runs
/// level-synchronized with the exploration itself.
struct Temporal {
    spec: TemporalSpec,
    depth: usize,
    current: BTreeSet<usize>,
    levels: Vec<HashMap<usize, (usize, Step)>>,
    outcome: Option<TemporalOutcome>,
}

impl Temporal {
    fn new(spec: TemporalSpec) -> Self {
        let zero_bound = spec.bound() == 0;
        let liveness = spec.liveness();
        let mut tm = Temporal {
            spec,
            depth: 0,
            current: BTreeSet::from([0]),
            levels: vec![HashMap::new()],
            outcome: None,
        };
        if zero_bound {
            // "within zero steps" resolves before any step fires:
            // unsatisfiable for the liveness flavors (the empty prefix
            // is already obligation-open and of full length),
            // trivially satisfied for release
            tm.outcome = Some(if liveness {
                TemporalOutcome::Prefix { state: 0 }
            } else {
                TemporalOutcome::Holds
            });
        }
        tm
    }

    /// Called at the boundary that just absorbed level `depth` — all
    /// outgoing edges of states at BFS depth ≤ `depth` are now known.
    fn at_boundary(&mut self, depth: usize, shared: &Shared) {
        if self.outcome.is_some() || self.depth != depth {
            return;
        }
        self.check_deadlocks(shared);
        if self.outcome.is_none() {
            self.propagate(shared);
        }
    }

    /// A deadlocked member of S_d (d < bound) wedges the run with its
    /// obligation open — a violation for the liveness flavors only
    /// (release discharges on run end, so its deadlocked members
    /// simply stop contributing successors).
    fn check_deadlocks(&mut self, shared: &Shared) {
        if !self.spec.liveness() {
            return;
        }
        if let Some(&s) = self.current.iter().find(|s| shared.deadlocks.contains(*s)) {
            self.outcome = Some(TemporalOutcome::Wedged {
                state: s,
                depth: self.depth,
            });
        }
    }

    /// One propagation step: S_d → S_{d+1} over the absorbed
    /// adjacency, classifying every outgoing edge through the shared
    /// [`TemporalSpec`]. The scan order (BTreeSet members, canonical
    /// absorption order within each adjacency list) is worker-count
    /// independent, so the first violating edge — and hence the
    /// counterexample — is too.
    fn propagate(&mut self, shared: &Shared) {
        let mut next = BTreeSet::new();
        let mut level: HashMap<usize, (usize, Step)> = HashMap::new();
        for &s in &self.current {
            for (step, t) in &shared.adj[s] {
                match self.spec.classify(step) {
                    StepClass::Discharge => {}
                    StepClass::Carry => {
                        if next.insert(*t) {
                            level.insert(*t, (s, step.clone()));
                        }
                    }
                    StepClass::Violate => {
                        self.outcome = Some(TemporalOutcome::Edge {
                            source: s,
                            step: step.clone(),
                            depth: self.depth,
                            target: *t,
                        });
                        return;
                    }
                }
            }
        }
        self.levels.push(level);
        self.current = next;
        self.depth += 1;
        if self.current.is_empty() {
            // every open path resolved; this proves the property only
            // while the absorbed graph is complete — after a
            // max_states drop it may merely reflect missing
            // transitions (including missed violating edges)
            self.outcome = Some(if shared.dropped {
                TemporalOutcome::Inconclusive
            } else {
                TemporalOutcome::Holds
            });
        } else if self.depth == self.spec.bound() {
            self.outcome = Some(if self.spec.liveness() {
                // an obligation-open prefix of full length: states in
                // `current` are genuinely reached, so this is sound
                // even on an incomplete graph
                let state = *self.current.iter().next().expect("non-empty");
                TemporalOutcome::Prefix { state }
            } else if shared.dropped {
                TemporalOutcome::Inconclusive
            } else {
                // release: the obligation expired with `q` sustained
                // on every surviving path — discharged
                TemporalOutcome::Holds
            });
        }
    }

    /// After a *complete* exploration the adjacency is final: keep
    /// propagating (cycles can extend obligation-open paths past the
    /// BFS horizon) until the monitor resolves — at most `bound`
    /// rounds.
    fn finish(&mut self, completed: bool, shared: &Shared) {
        if !completed {
            return;
        }
        while self.outcome.is_none() {
            self.check_deadlocks(shared);
            if self.outcome.is_none() {
                self.propagate(shared);
            }
        }
    }

    /// Reconstructs the obligation-open schedule of length `depth`
    /// ending in `state`, through the per-level predecessor links.
    fn witness(&self, state: usize, depth: usize) -> Schedule {
        let mut steps = Vec::new();
        let mut s = state;
        for j in (1..=depth).rev() {
            let (prev, step) = &self.levels[j][&s];
            steps.push(step.clone());
            s = *prev;
        }
        steps.reverse();
        steps.into_iter().collect()
    }
}

/// The [`ExploreVisitor`] wiring the monitors into the explorer; the
/// optional progress callback is consulted at every checkpoint and at
/// every level boundary, so a service can stream progress and cancel a
/// check cooperatively.
struct CheckVisitor<'a> {
    monitors: Vec<Monitor>,
    shared: Shared,
    progress: Option<&'a mut ProgressFn<'a>>,
}

impl ExploreVisitor for CheckVisitor<'_> {
    fn on_transition(&mut self, source: usize, step: &Step, target: usize, _depth: usize) {
        self.shared.note_transition(source, step, target);
        for m in &mut self.monitors {
            if let Monitor::Safety { pred, violation } = m {
                if violation.is_none() && !pred.eval(step) {
                    *violation = Some((source, step.clone(), target));
                }
            }
        }
    }

    fn on_states_dropped(&mut self, _depth: usize) {
        self.shared.dropped = true;
    }

    fn on_deadlock(&mut self, state: usize, _depth: usize) {
        self.shared.ensure(state);
        self.shared.deadlocks.insert(state);
        for m in &mut self.monitors {
            if let Monitor::DeadlockFree { violation } = m {
                if violation.is_none() {
                    *violation = Some(state);
                }
            }
        }
    }

    fn on_level_end(&mut self, depth: usize, state_count: usize) -> VisitControl {
        for m in &mut self.monitors {
            if let Monitor::Temporal(tm) = m {
                tm.at_boundary(depth, &self.shared);
            }
        }
        let any_violated = self.monitors.iter().any(Monitor::violated);
        let all_resolved = self.monitors.iter().all(Monitor::resolved);
        if any_violated || all_resolved {
            return VisitControl::Stop;
        }
        // boundaries double as cancellation points: small levels may
        // never reach a transition-count checkpoint
        match &mut self.progress {
            Some(f) => f(state_count, self.shared.transitions, depth),
            None => VisitControl::Continue,
        }
    }

    fn on_progress(&mut self, states: usize, transitions: usize, depth: usize) -> VisitControl {
        match &mut self.progress {
            Some(f) => f(states, transitions, depth),
            None => VisitControl::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Exclusion, Precedence};
    use moccml_kernel::{EventId, Specification, Universe};
    use std::sync::Arc;

    fn alternating() -> (Arc<Program>, EventId, EventId) {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        (Program::new(spec), a, b)
    }

    #[test]
    fn observed_check_streams_progress_and_matches_plain_check() {
        let (program, a, b) = alternating();
        let prop = Prop::Never(StepPred::and(StepPred::fired(a), StepPred::fired(b)));
        let mut calls = Vec::new();
        let mut on_progress = |states: usize, transitions: usize, depth: usize| {
            calls.push((states, transitions, depth));
            VisitControl::Continue
        };
        let observed = check_props_observed(
            &program,
            std::slice::from_ref(&prop),
            &ExploreOptions::default(),
            &mut on_progress,
        );
        let plain = check_props(
            &program,
            std::slice::from_ref(&prop),
            &ExploreOptions::default(),
        );
        assert_eq!(observed, plain, "the callback must not change the verdict");
        assert!(
            !calls.is_empty(),
            "level boundaries report progress even on tiny spaces"
        );
    }

    #[test]
    fn observed_check_stop_yields_undetermined_not_a_verdict() {
        // an unbounded precedence: the space is infinite, `never(b)`
        // is violated at depth 2 — but we abort at the very first
        // checkpoint, before any level is absorbed into a verdict
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let program = Program::new(spec);
        let prop = Prop::Never(StepPred::fired(b));
        let mut on_progress = |_: usize, _: usize, _: usize| VisitControl::Stop;
        let report = check_props_observed(
            &program,
            std::slice::from_ref(&prop),
            &ExploreOptions::default(),
            &mut on_progress,
        );
        assert!(!report.completed);
        assert_eq!(report.statuses[0], PropStatus::Undetermined);
    }

    #[test]
    fn safety_holds_on_complete_spaces() {
        let (program, a, b) = alternating();
        // the alternation never fires a and b together
        let status = check(
            &program,
            &Prop::Never(StepPred::and(StepPred::fired(a), StepPred::fired(b))),
            &ExploreOptions::default(),
        );
        assert_eq!(status, PropStatus::Holds);
    }

    #[test]
    fn safety_violation_is_shortest_and_replayable() {
        let (program, _, b) = alternating();
        let status = check(
            &program,
            &Prop::Never(StepPred::fired(b)),
            &ExploreOptions::default(),
        );
        let PropStatus::Violated(ce) = status else {
            panic!("b fires on the second step");
        };
        assert_eq!(ce.schedule.len(), 2);
        assert!(ce.schedule.steps()[1].contains(b));
        assert!(ce.replays_on(&program));
    }

    #[test]
    fn always_reports_the_first_refuting_step() {
        let (program, a, b) = alternating();
        // "every step fires a" is refuted by the second step {b}
        let status = check(
            &program,
            &Prop::Always(StepPred::fired(a)),
            &ExploreOptions::default(),
        );
        let PropStatus::Violated(ce) = status else {
            panic!("violated");
        };
        assert_eq!(ce.schedule.len(), 2);
        assert!(ce.schedule.steps()[1].contains(b));
    }

    #[test]
    fn deadlock_free_finds_the_wedge() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("wedge", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(1)));
        spec.add_constraint(Box::new(Precedence::strict("c<b", c, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c)));
        let program = Program::new(spec);
        let status = check(&program, &Prop::DeadlockFree, &ExploreOptions::default());
        let PropStatus::Violated(ce) = status else {
            panic!("wedges after a");
        };
        assert_eq!(ce.schedule.len(), 1);
        assert!(ce.schedule.steps()[0].contains(a));
        assert!(ce.replays_on(&program));
    }

    #[test]
    fn bounded_liveness_violation_has_exact_length() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("lazy", u);
        // b needs a first, but a may fire forever without b
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let program = Program::new(spec);
        let status = check(
            &program,
            &Prop::EventuallyWithin(StepPred::fired(b), 3),
            &ExploreOptions::default(),
        );
        let PropStatus::Violated(ce) = status else {
            panic!("a a a never fires b");
        };
        assert_eq!(ce.schedule.len(), 3);
        assert!(ce.schedule.iter().all(|s| !s.contains(b)));
        assert!(ce.replays_on(&program));
    }

    #[test]
    fn bounded_liveness_holds_when_pred_is_forced() {
        let (program, a, _) = alternating();
        // a must fire in the very first step of any run
        let status = check(
            &program,
            &Prop::EventuallyWithin(StepPred::fired(a), 1),
            &ExploreOptions::default(),
        );
        assert_eq!(status, PropStatus::Holds);
    }

    #[test]
    fn bounded_liveness_detects_wedged_runs() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("wedge", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(1)));
        spec.add_constraint(Box::new(Precedence::strict("c<b", c, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c)));
        let program = Program::new(spec);
        // b never fires, and the run wedges after one step — long
        // before the bound of 50 is reached
        let status = check(
            &program,
            &Prop::EventuallyWithin(StepPred::fired(b), 50),
            &ExploreOptions::default(),
        );
        let PropStatus::Violated(ce) = status else {
            panic!("wedged pred-free");
        };
        assert!(ce.schedule.len() <= 1);
        assert!(ce.replays_on(&program));
    }

    #[test]
    fn bounded_liveness_propagates_past_the_bfs_horizon() {
        // the alternation's space has BFS depth 2, but pred-free paths
        // cycle: "c fires within 5" must still be refuted by unrolling
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let c = u.event("c");
        let mut spec = Specification::new("alt+c", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        spec.add_constraint(Box::new(Exclusion::new("c#a", [c, a])));
        let program = Program::new(spec);
        let status = check(
            &program,
            &Prop::EventuallyWithin(StepPred::fired(c), 5),
            &ExploreOptions::default(),
        );
        let PropStatus::Violated(ce) = status else {
            panic!("a b a b a avoids c");
        };
        assert_eq!(ce.schedule.len(), 5);
        assert!(ce.replays_on(&program));
    }

    #[test]
    fn zero_bound_is_unsatisfiable() {
        let (program, a, _) = alternating();
        let status = check(
            &program,
            &Prop::EventuallyWithin(StepPred::fired(a), 0),
            &ExploreOptions::default(),
        );
        let PropStatus::Violated(ce) = status else {
            panic!("k=0 is unsatisfiable");
        };
        assert!(ce.schedule.is_empty());
    }

    #[test]
    fn bounded_until_holds_when_the_goal_is_forced() {
        let (program, a, b) = alternating();
        // every run is a ; b ; a ; b …: a sustains until b discharges
        let status = check(
            &program,
            &Prop::UntilWithin(StepPred::fired(a), StepPred::fired(b), 2),
            &ExploreOptions::default(),
        );
        assert_eq!(status, PropStatus::Holds);
    }

    #[test]
    fn bounded_until_violated_by_a_sustain_breaking_step() {
        let (program, a, _) = alternating();
        // "a sustains until c" with c outside the spec (never fires):
        // the b-step at depth 2 refutes both — the shortest violating
        // edge
        let c = EventId::from_index(2);
        let status = check(
            &program,
            &Prop::UntilWithin(StepPred::fired(a), StepPred::fired(c), 5),
            &ExploreOptions::default(),
        );
        let PropStatus::Violated(ce) = status else {
            panic!("the b step breaks the sustain");
        };
        assert_eq!(ce.schedule.len(), 2);
        assert!(ce.replays_on(&program));
    }

    #[test]
    fn bounded_until_expires_like_eventually() {
        // until<=k(⊤-like sustain, q) must agree with eventually<=k(q)
        // when the sustain always holds
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("lazy", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let program = Program::new(spec);
        let status = check(
            &program,
            &Prop::UntilWithin(StepPred::fired(a), StepPred::fired(b), 3),
            &ExploreOptions::default(),
        );
        let PropStatus::Violated(ce) = status else {
            panic!("a a a never fires b");
        };
        assert_eq!(ce.schedule.len(), 3);
        assert!(ce.replays_on(&program));
    }

    #[test]
    fn bounded_release_violated_when_q_breaks_early() {
        let (program, a, b) = alternating();
        // "a holds released by b" — but b's own step drops a
        let status = check(
            &program,
            &Prop::ReleaseWithin(StepPred::fired(b), StepPred::fired(a), 4),
            &ExploreOptions::default(),
        );
        let PropStatus::Violated(ce) = status else {
            panic!("the b step refutes the sustained a");
        };
        assert_eq!(ce.schedule.len(), 2);
        assert!(ce.replays_on(&program));
    }

    #[test]
    fn bounded_release_holds_on_expiry_and_discharge() {
        let (program, a, b) = alternating();
        // expiry: a holds for the single step the obligation lives
        let expiry = check(
            &program,
            &Prop::ReleaseWithin(StepPred::fired(b), StepPred::fired(a), 1),
            &ExploreOptions::default(),
        );
        assert_eq!(expiry, PropStatus::Holds);
        // discharge: the first step both sustains and releases
        let discharge = check(
            &program,
            &Prop::ReleaseWithin(StepPred::fired(a), StepPred::fired(a), 9),
            &ExploreOptions::default(),
        );
        assert_eq!(discharge, PropStatus::Holds);
        // zero bound holds trivially
        let zero = check(
            &program,
            &Prop::ReleaseWithin(StepPred::fired(b), StepPred::fired(a), 0),
            &ExploreOptions::default(),
        );
        assert_eq!(zero, PropStatus::Holds);
    }

    #[test]
    fn bounded_until_detects_wedged_runs() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("wedge", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(1)));
        spec.add_constraint(Box::new(Precedence::strict("c<b", c, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c)));
        let program = Program::new(spec);
        let status = check(
            &program,
            &Prop::UntilWithin(StepPred::fired(a), StepPred::fired(b), 50),
            &ExploreOptions::default(),
        );
        let PropStatus::Violated(ce) = status else {
            panic!("wedged with the obligation open");
        };
        assert!(ce.schedule.len() <= 1);
        assert!(ce.replays_on(&program));
    }

    #[test]
    fn early_stop_visits_fewer_states_than_full_exploration() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let program = Program::new(spec);
        let options = ExploreOptions::default().with_max_states(500);
        let full = program.explore(&options).state_count();
        let report = check_props(&program, &[Prop::Never(StepPred::fired(b))], &options);
        assert!(report.any_violated());
        assert!(
            report.states_visited < full,
            "early stop ({}) must beat full exploration ({full})",
            report.states_visited
        );
    }

    #[test]
    fn bounded_liveness_is_undetermined_not_holds_under_truncation() {
        // regression: under max_states truncation the explorer drops
        // transitions, so the pred-free set empties spuriously — the
        // monitor must not certify a genuinely violated property
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let program = Program::new(spec);
        // the run `a ; a` is b-free at full bound length: violated
        let prop = Prop::EventuallyWithin(StepPred::fired(b), 2);
        let full = check(&program, &prop, &ExploreOptions::default());
        assert!(full.is_violated(), "a;a avoids b");
        let truncated = check(
            &program,
            &prop,
            &ExploreOptions::default().with_max_states(1),
        );
        assert_eq!(truncated, PropStatus::Undetermined);
    }

    #[test]
    fn undetermined_on_truncated_exploration() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let program = Program::new(spec);
        // safety that holds everywhere, on a space truncated by bounds
        let report = check_props(
            &program,
            &[Prop::Always(StepPred::implies(b, b))],
            &ExploreOptions::default().with_max_states(5),
        );
        assert!(!report.completed);
        assert_eq!(report.statuses[0], PropStatus::Undetermined);
    }

    #[test]
    fn multi_prop_reports_keep_input_order() {
        let (program, a, b) = alternating();
        let props = [
            Prop::DeadlockFree,
            Prop::Never(StepPred::and(StepPred::fired(a), StepPred::fired(b))),
            Prop::Never(StepPred::fired(a)),
        ];
        let report = check_props(&program, &props, &ExploreOptions::default());
        // the third prop violates at level 0, stopping the run: the
        // other two see a complete space iff the frontier was done
        assert!(report.statuses[2].is_violated());
        assert_eq!(report.first_violation().expect("violated").0, 2);
    }

    /// Two independent alternations: the cone of `a`/`b` excludes the
    /// `x`/`y` constraint, so a sliced check explores strictly fewer
    /// states (2 instead of the 2×2 product).
    fn decoupled() -> (Arc<Program>, [EventId; 4]) {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let (x, y) = (u.event("x"), u.event("y"));
        let mut spec = Specification::new("decoupled", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        spec.add_constraint(Box::new(Alternation::new("x~y", x, y)));
        (Program::new(spec), [a, b, x, y])
    }

    #[test]
    fn sliceable_events_matches_the_stutter_invariance_rule() {
        let a = EventId::from_index(0);
        // Never(fired(a)): p(∅) = false — sliceable
        assert!(sliceable_events(&Prop::Never(StepPred::fired(a))).is_some());
        // Always(implies(a, a)): p(∅) = true — sliceable
        assert!(sliceable_events(&Prop::Always(StepPred::implies(a, a))).is_some());
        // polarity mismatch: a foreign-event step would flip these
        assert!(sliceable_events(&Prop::Always(StepPred::fired(a))).is_none());
        assert!(sliceable_events(&Prop::Never(StepPred::negate(StepPred::fired(a)))).is_none());
        // liveness and deadlock-freedom couple cone and remainder
        assert!(sliceable_events(&Prop::EventuallyWithin(StepPred::fired(a), 3)).is_none());
        assert!(sliceable_events(&Prop::DeadlockFree).is_none());
    }

    #[test]
    fn sliced_check_preserves_holds_with_fewer_states() {
        let (program, [a, b, _, _]) = decoupled();
        let prop = Prop::Never(StepPred::and(StepPred::fired(a), StepPred::fired(b)));
        let full = check_with(&program, &prop, &CheckOptions::new());
        let sliced = check_with(&program, &prop, &CheckOptions::new().with_slice(true));
        assert_eq!(full.statuses[0], PropStatus::Holds);
        assert_eq!(sliced.statuses[0], PropStatus::Holds);
        assert!(
            sliced.states_visited < full.states_visited,
            "{} !< {}",
            sliced.states_visited,
            full.states_visited
        );
    }

    #[test]
    fn sliced_violation_replays_on_the_full_program() {
        let (program, [_, b, _, _]) = decoupled();
        let prop = Prop::Never(StepPred::fired(b));
        let full = check_with(&program, &prop, &CheckOptions::new());
        let sliced = check_with(&program, &prop, &CheckOptions::new().with_slice(true));
        let PropStatus::Violated(fce) = &full.statuses[0] else {
            panic!("b fires");
        };
        let PropStatus::Violated(sce) = &sliced.statuses[0] else {
            panic!("b fires in the slice too");
        };
        assert_eq!(fce.schedule.len(), sce.schedule.len());
        assert!(sce.replays_on(&program));
        assert!(sliced.states_visited <= full.states_visited);
    }

    #[test]
    fn ineligible_props_fall_back_to_the_full_program() {
        let (program, [_, _, x, _]) = decoupled();
        // DeadlockFree must never slice: both reports are the full run
        let full = check_with(&program, &Prop::DeadlockFree, &CheckOptions::new());
        let sliced = check_with(
            &program,
            &Prop::DeadlockFree,
            &CheckOptions::new().with_slice(true),
        );
        assert_eq!(full, sliced);
        // a total cone also falls back (same program, no recompile)
        let touching_all = Prop::Never(StepPred::and(
            StepPred::fired(x),
            StepPred::fired(EventId::from_index(0)),
        ));
        let f = check_with(&program, &touching_all, &CheckOptions::new());
        let s = check_with(
            &program,
            &touching_all,
            &CheckOptions::new().with_slice(true),
        );
        assert_eq!(f, s);
    }
}
