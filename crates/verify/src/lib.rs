//! # moccml-verify
//!
//! The verification layer of the MoCCML reproduction: state a property
//! over a specification, get a minimal replayable counterexample — or
//! check a recorded trace / a second specification against it.
//!
//! The paper gives MoCCML an executable operational semantics precisely
//! so models can be *verified* by exhaustive simulation. This crate
//! turns the engine's deterministic parallel explorer into a checker:
//!
//! * **Properties** ([`Prop`]) — safety (`Always`/`Never` over
//!   [`StepPred`](moccml_kernel::StepPred) step predicates), the
//!   bounded-temporal family (`EventuallyWithin(k)`,
//!   `UntilWithin(p, q, k)`, `ReleaseWithin(p, q, k)` — one shared
//!   monitor core, also exposed per trace as [`TraceEvaluator`] for
//!   the statistical checker) and deadlock-freedom, compiled into
//!   observer monitors.
//! * **On-the-fly checking** ([`check`] / [`check_props`]) — monitors
//!   run *inside* the explorer's canonicalization pass through the
//!   [`ExploreVisitor`](moccml_engine::ExploreVisitor) hook, so the BFS
//!   stops deterministically at the first violating level instead of
//!   materialising the full state-space. Violations come back as
//!   [`Counterexample`]s: shortest schedules from the initial state,
//!   re-validated through a fresh [`Cursor`](moccml_engine::Cursor)
//!   before they are returned — and byte-identical for every
//!   [`workers`](moccml_engine::ExploreOptions::workers) count.
//! * **Cone-of-influence slicing** ([`check_with`] with
//!   [`CheckOptions::with_slice`]) — stutter-invariant safety
//!   properties (see [`sliceable_events`]) are checked on
//!   [`Program::slice`](moccml_engine::Program::slice) over the
//!   property's events instead of the full program: the verdict is
//!   identical, a violation's witness keeps its shortest length and
//!   replays on the full program, and the BFS visits at most — and on
//!   specs with independent parts strictly fewer — states.
//! * **Minimization** ([`minimize_witness`] / [`is_witness`]) —
//!   greedily shrink any witness schedule (drop steps, thin events out
//!   of steps), re-validating every candidate through a fresh cursor,
//!   until it is *locally minimal*: no single step or event can be
//!   removed without losing the violation.
//! * **Conformance** ([`conformance`]) — replay any recorded
//!   [`Schedule`](moccml_kernel::Schedule) (e.g. parsed from text with
//!   `Schedule::parse_lines`) against a program; the verdict is
//!   [`Verdict::Conforms`] or the first violating step index with the
//!   violated constraints' names.
//! * **Equivalence / refinement** ([`check_equivalence`] /
//!   [`check_refinement`]) — bounded synchronized-product exploration
//!   of two programs over one universe, returning a shortest
//!   distinguishing schedule on failure. The product is compiled into
//!   one program and explored through the **parallel explorer**
//!   ([`EquivOptions::workers`]), with the verdict identical for every
//!   worker count.
//!
//! ## Worked example: safety + conformance
//!
//! ```
//! use moccml_ccsl::{Alternation, Precedence};
//! use moccml_engine::{ExploreOptions, Program};
//! use moccml_kernel::{Schedule, Specification, StepPred, Universe};
//! use moccml_verify::{check, conformance, Prop, PropStatus, Verdict};
//!
//! // a tiny producer/consumer protocol: send alternates with ack,
//! // and every ack is preceded by a send
//! let mut u = Universe::new();
//! let (send, ack) = (u.event("send"), u.event("ack"));
//! let mut spec = Specification::new("protocol", u.clone());
//! spec.add_constraint(Box::new(Alternation::new("send~ack", send, ack)));
//! spec.add_constraint(Box::new(Precedence::strict("send<ack", send, ack)));
//! let program = Program::new(spec);
//!
//! // SAFETY: send and ack never coincide — holds, proven on the
//! // fully explored space
//! let safe = Prop::Never(StepPred::and(StepPred::fired(send), StepPred::fired(ack)));
//! assert_eq!(check(&program, &safe, &ExploreOptions::default()), PropStatus::Holds);
//!
//! // SAFETY, violated: "ack never fires" has the 2-step witness
//! // send ; ack — minimal, and replayable by construction
//! let status = check(&program, &Prop::Never(StepPred::fired(ack)),
//!                    &ExploreOptions::default());
//! let PropStatus::Violated(ce) = status else { unreachable!() };
//! assert_eq!(ce.schedule.len(), 2);
//! assert!(ce.replays_on(&program));
//!
//! // CONFORMANCE: check a recorded log against the spec — the text
//! // format round-trips through Schedule::{to_lines, parse_lines}
//! let log = Schedule::parse_lines("send\nack\nsend\n", &u).expect("parses");
//! assert!(conformance(&program, &log).conforms());
//! let bad = Schedule::parse_lines("send\nsend\n", &u).expect("parses");
//! match conformance(&program, &bad) {
//!     Verdict::Violation { step, violated } => {
//!         assert_eq!(step, 1);
//!         assert_eq!(violated, vec!["send~ack".to_owned()]);
//!     }
//!     Verdict::Conforms => unreachable!("double send breaks alternation"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod conformance;
mod equivalence;
mod minimize;
mod prop;
mod temporal;

pub use check::{
    check, check_props, check_props_observed, check_with, sliceable_events, CheckOptions,
    CheckReport, Counterexample, ProgressFn, PropStatus,
};
pub use conformance::{conformance, Verdict};
pub use equivalence::{
    check_equivalence, check_refinement, Distinguisher, EquivOptions, EquivalenceVerdict, Side,
    VerifyError,
};
pub use minimize::{is_witness, minimize_witness};
pub use prop::Prop;
pub use temporal::{TraceEvaluator, TraceStatus};
