//! The shared machine-readable result schema: one builder per
//! verification operation, used verbatim by **both** the daemon's
//! `result` events and the CLI's `--format json` output.
//!
//! Everything here is derived from the same programmatic values the
//! text CLI prints — statuses, state counts, witness schedules in the
//! exact `a ; b` rendering — so a JSON verdict and its text twin can
//! be golden-compared field by field. There is exactly one schema; the
//! protocol does not get to drift from the CLI.

use crate::json::Json;
use moccml_engine::{
    Engine, ExploreOptions, ExploreVisitor, Lexicographic, MaxParallel, MinSerial, Policy, Random,
    SafeMaxParallel, VisitControl,
};
use moccml_kernel::{Schedule, Universe};
use moccml_lang::Compiled;
use moccml_smc::{check_statistical_observed, okamoto_sample_size, SmcOptions, SmcRun, SmcVerdict};
use moccml_verify::{check_props_observed, conformance, minimize_witness, PropStatus, Verdict};

/// A progress observer: `(states, transitions, depth) -> control`.
/// Return [`VisitControl::Stop`] to abandon the operation (the service
/// does this on cancellation and deadline).
pub type Progress<'a> = dyn FnMut(usize, usize, usize) -> VisitControl + 'a;

/// A progress observer that never stops — the CLI path.
pub fn no_progress() -> impl FnMut(usize, usize, usize) -> VisitControl {
    |_, _, _| VisitControl::Continue
}

/// Renders a schedule as ` ; `-separated steps of space-separated
/// event names — identical to the text CLI's rendering, so JSON and
/// text verdicts carry byte-equal schedules.
#[must_use]
pub fn render_schedule(schedule: &Schedule, universe: &Universe) -> String {
    match schedule.to_lines(universe) {
        Ok(lines) => lines.trim_end().replace('\n', " ; "),
        Err(_) => schedule.to_string(),
    }
}

fn schedule_obj(schedule: &Schedule, universe: &Universe) -> Json {
    Json::obj([
        ("steps", Json::int(schedule.len())),
        ("schedule", Json::Str(render_schedule(schedule, universe))),
    ])
}

/// `check`: verifies every `assert`ed property, one exploration per
/// property exactly like the text CLI, streaming progress through
/// `progress`.
///
/// Shape: `{"kind":"check","spec",…,"properties":[{"prop","status":
/// "holds"|"violated"|"undetermined","states",…,"witness"?,
/// "minimized"?}],"violated":bool}`.
#[must_use]
pub fn check_json(compiled: &Compiled, options: &ExploreOptions, progress: &mut Progress) -> Json {
    check_json_inner(compiled, options, progress, None)
}

/// [`check_json`] plus a `stats` member: per-property monitors
/// aggregated into the same states/sec + elapsed figures the text
/// CLI's `--stats` flag prints after the verdicts. Timing-dependent,
/// so opt-in and never part of a byte-compared payload.
#[must_use]
pub fn check_json_with_stats(
    compiled: &Compiled,
    options: &ExploreOptions,
    progress: &mut Progress,
) -> Json {
    let mut total_states = 0usize;
    let mut total_elapsed = std::time::Duration::ZERO;
    let payload = check_json_inner(
        compiled,
        options,
        progress,
        Some((&mut total_states, &mut total_elapsed)),
    );
    with_throughput(payload, total_states, total_elapsed)
}

fn check_json_inner(
    compiled: &Compiled,
    options: &ExploreOptions,
    progress: &mut Progress,
    mut totals: Option<(&mut usize, &mut std::time::Duration)>,
) -> Json {
    let universe = compiled.universe();
    let mut properties = Vec::new();
    let mut violated = false;
    for prop in &compiled.props {
        // when accumulating, attach a fresh monitor per property (one
        // exploration each) and sum its terminal reading
        let monitor = moccml_engine::ExploreMonitor::new();
        let options = if totals.is_some() {
            options.clone().with_monitor(&monitor)
        } else {
            options.clone()
        };
        let report = check_props_observed(
            &compiled.program,
            std::slice::from_ref(prop),
            &options,
            progress,
        );
        if let Some((states, elapsed)) = totals.as_mut() {
            let m = monitor.snapshot();
            **states += m.states;
            **elapsed += m.elapsed;
        }
        let mut members = vec![
            ("prop".to_owned(), Json::Str(prop.display(universe))),
            ("states".to_owned(), Json::int(report.states_visited)),
        ];
        match &report.statuses[0] {
            PropStatus::Holds => {
                members.insert(1, ("status".to_owned(), Json::str("holds")));
            }
            PropStatus::Violated(ce) => {
                violated = true;
                members.insert(1, ("status".to_owned(), Json::str("violated")));
                members.push(("witness".to_owned(), schedule_obj(&ce.schedule, universe)));
                let minimized = {
                    let _span = options.recorder.span("minimize");
                    minimize_witness(&compiled.program, prop, &ce.schedule)
                };
                members.push(("minimized".to_owned(), schedule_obj(&minimized, universe)));
            }
            PropStatus::Undetermined => {
                members.insert(1, ("status".to_owned(), Json::str("undetermined")));
            }
        }
        properties.push(Json::Obj(members));
    }
    Json::obj([
        ("kind", Json::str("check")),
        ("spec", Json::str(&compiled.name)),
        ("properties", Json::Arr(properties)),
        ("violated", Json::Bool(violated)),
    ])
}

/// Adapts a [`Progress`] closure to the explorer's visitor hook.
struct ProgressVisitor<'a, 'b> {
    progress: &'a mut Progress<'b>,
}

impl ExploreVisitor for ProgressVisitor<'_, '_> {
    fn on_progress(&mut self, states: usize, transitions: usize, depth: usize) -> VisitControl {
        (self.progress)(states, transitions, depth)
    }

    fn on_level_end(&mut self, depth: usize, state_count: usize) -> VisitControl {
        // level boundaries are extra cancellation points: cheap, and
        // they catch deep-but-narrow spaces between interval ticks
        (self.progress)(state_count, usize::MAX, depth)
    }
}

/// `explore`: builds the state-space and reports the PAM metrics plus
/// the schedule counts of lengths 1/2/4/8 (the text CLI's rows).
///
/// Counts past `i64` range are encoded as decimal strings.
#[must_use]
pub fn explore_json(
    compiled: &Compiled,
    options: &ExploreOptions,
    progress: &mut Progress,
) -> Json {
    let mut visitor = ProgressVisitor { progress };
    let space = compiled.program.explore_with(options, &mut visitor);
    let stats = space.stats();
    let schedules = [1usize, 2, 4, 8]
        .iter()
        .map(|len| {
            Json::obj([
                ("length", Json::int(*len)),
                ("count", Json::u128(space.count_schedules(*len))),
            ])
        })
        .collect();
    Json::obj([
        ("kind", Json::str("explore")),
        ("spec", Json::str(&compiled.name)),
        ("states", Json::int(stats.states)),
        ("transitions", Json::int(stats.transitions)),
        ("deadlocks", Json::int(stats.deadlocks)),
        ("max_parallelism", Json::int(stats.max_step_parallelism)),
        ("mean_branching", Json::Float(stats.mean_branching)),
        ("truncated", Json::Bool(stats.truncated)),
        ("schedules", Json::Arr(schedules)),
    ])
}

/// JSON rendering of a throughput [`ExploreMetrics`](moccml_engine::ExploreMetrics) reading — the
/// block `moccml explore --stats --format json` appends and `serve`
/// progress events embed. Timing-dependent by nature, so it is opt-in
/// and never part of a byte-compared result payload.
#[must_use]
pub fn metrics_json(metrics: &moccml_engine::ExploreMetrics) -> Json {
    Json::obj([
        ("states_per_sec", Json::Float(metrics.states_per_sec())),
        (
            "elapsed_ms",
            Json::Float(metrics.elapsed.as_secs_f64() * 1_000.0),
        ),
        ("peak_frontier", Json::int(metrics.peak_frontier)),
        ("interned", Json::int(metrics.interned)),
        (
            "interner_occupancy",
            Json::Float(metrics.interner_occupancy()),
        ),
    ])
}

/// Appends a `stats` member (from [`metrics_json`]) to a result
/// payload object — how the CLI's `--stats` flag decorates
/// [`explore_json`] without perturbing the stats-less schema.
#[must_use]
pub fn with_metrics(payload: Json, metrics: &moccml_engine::ExploreMetrics) -> Json {
    match payload {
        Json::Obj(mut members) => {
            members.push(("stats".to_owned(), metrics_json(metrics)));
            Json::Obj(members)
        }
        other => other,
    }
}

/// Appends the `stats` member `check` and `conformance` carry under
/// `--stats`: aggregate throughput only (`states_per_sec` +
/// `elapsed_ms`), the JSON twin of the text CLI's
/// `throughput: … states/sec over … ms` line.
#[must_use]
pub fn with_throughput(payload: Json, states: usize, elapsed: std::time::Duration) -> Json {
    let secs = elapsed.as_secs_f64();
    #[allow(clippy::cast_precision_loss)]
    let states_per_sec = if secs > 0.0 {
        states as f64 / secs
    } else {
        0.0
    };
    let stats = Json::obj([
        ("states_per_sec", Json::Float(states_per_sec)),
        ("elapsed_ms", Json::Float(secs * 1_000.0)),
    ]);
    match payload {
        Json::Obj(mut members) => {
            members.push(("stats".to_owned(), stats));
            Json::Obj(members)
        }
        other => other,
    }
}

/// Builds validated [`SmcOptions`] from optional wire/CLI knobs,
/// turning out-of-range values into messages instead of the library's
/// panics (daemon workers and the CLI both want a clean `error`).
///
/// # Errors
///
/// Returns a message naming the offending knob and its valid range.
pub fn smc_options(
    epsilon: Option<f64>,
    delta: Option<f64>,
    prob_threshold: Option<f64>,
    max_trace_len: Option<usize>,
    seed: Option<u64>,
    workers: Option<usize>,
) -> Result<SmcOptions, String> {
    let mut options = SmcOptions::default();
    if let Some(e) = epsilon {
        if !(e > 0.0 && e < 1.0) {
            return Err(format!("epsilon must be in (0, 1), got {e}"));
        }
        options = options.with_epsilon(e);
    }
    if let Some(d) = delta {
        if !(d > 0.0 && d < 1.0) {
            return Err(format!("delta must be in (0, 1), got {d}"));
        }
        options = options.with_delta(d);
    }
    if let Some(t) = prob_threshold {
        if !(t > 0.0 && t < 1.0) {
            return Err(format!("prob-threshold must be in (0, 1), got {t}"));
        }
        options = options.with_prob_threshold(t);
    }
    if let Some(len) = max_trace_len {
        if len == 0 {
            return Err("max-trace-len must be positive".to_owned());
        }
        options = options.with_max_trace_len(len);
    }
    if let Some(s) = seed {
        options = options.with_seed(s);
    }
    if let Some(w) = workers {
        options = options.with_workers(w.max(1));
    }
    Ok(options)
}

/// `smc`: statistically checks every `assert`ed property by
/// Monte-Carlo trace sampling, one [`SmcReport`](moccml_smc::SmcReport)
/// per property rendered into the shared schema.
///
/// Shape: `{"kind":"smc","spec",…,"epsilon","delta","confidence",
/// "mode":"fixed-sample"|"sequential",("samples"|"threshold"),
/// "properties":[{"prop","verdict","traces","violations","estimate",
/// "ci_low","ci_high","witness_trace"?,"witness"?}],"violated":bool}`.
/// The witness schedule is already minimized (the report re-validates
/// and minimizes it through the verify layer).
#[must_use]
pub fn smc_json(compiled: &Compiled, options: &SmcOptions, run: &SmcRun<'_>) -> Json {
    let universe = compiled.universe();
    let mut properties = Vec::new();
    let mut violated = false;
    for prop in &compiled.props {
        let report = check_statistical_observed(&compiled.program, prop, options, run);
        let verdict = match report.verdict {
            SmcVerdict::Estimated => "estimated",
            SmcVerdict::AboveThreshold => "above-threshold",
            SmcVerdict::BelowThreshold => "below-threshold",
            SmcVerdict::Undecided => "undecided",
            SmcVerdict::Cancelled => "cancelled",
        };
        violated |= report.witness.is_some() || report.verdict == SmcVerdict::AboveThreshold;
        let mut members = vec![
            ("prop".to_owned(), Json::Str(prop.display(universe))),
            ("verdict".to_owned(), Json::str(verdict)),
            ("traces".to_owned(), Json::int(report.traces)),
            ("violations".to_owned(), Json::int(report.violations)),
            ("estimate".to_owned(), Json::Float(report.estimate)),
            ("ci_low".to_owned(), Json::Float(report.ci_low)),
            ("ci_high".to_owned(), Json::Float(report.ci_high)),
        ];
        if let Some(index) = report.witness_trace {
            members.push(("witness_trace".to_owned(), Json::int(index)));
        }
        if let Some(ce) = &report.witness {
            members.push(("witness".to_owned(), schedule_obj(&ce.schedule, universe)));
        }
        properties.push(Json::Obj(members));
    }
    let mut top = vec![
        ("kind".to_owned(), Json::str("smc")),
        ("spec".to_owned(), Json::str(&compiled.name)),
        ("epsilon".to_owned(), Json::Float(options.epsilon)),
        ("delta".to_owned(), Json::Float(options.delta)),
        ("confidence".to_owned(), Json::Float(1.0 - options.delta)),
    ];
    match options.prob_threshold {
        Some(threshold) => {
            top.push(("mode".to_owned(), Json::str("sequential")));
            top.push(("threshold".to_owned(), Json::Float(threshold)));
        }
        None => {
            top.push(("mode".to_owned(), Json::str("fixed-sample")));
            top.push((
                "samples".to_owned(),
                Json::int(okamoto_sample_size(options.epsilon, options.delta)),
            ));
        }
    }
    top.push(("properties".to_owned(), Json::Arr(properties)));
    top.push(("violated".to_owned(), Json::Bool(violated)));
    Json::Obj(top)
}

fn boxed_policy(name: &str, seed: u64) -> Result<Box<dyn Policy>, String> {
    Ok(match name {
        "lexicographic" => Box::new(Lexicographic),
        "random" => Box::new(Random::new(seed)),
        "max-parallel" => Box::new(MaxParallel),
        "min-serial" => Box::new(MinSerial),
        "safe" => Box::new(SafeMaxParallel),
        other => {
            return Err(format!(
                "unknown policy `{other}` (expected lexicographic, random, \
                 max-parallel, min-serial or safe)"
            ))
        }
    })
}

/// `simulate`: runs a policy-driven simulation for `steps` steps.
///
/// # Errors
///
/// Returns a message when `policy` is not a known policy name.
pub fn simulate_json(
    compiled: &Compiled,
    steps: usize,
    policy: &str,
    seed: u64,
) -> Result<Json, String> {
    let boxed = boxed_policy(policy, seed)?;
    let universe = compiled.universe().clone();
    let mut engine = Engine::from_program(&compiled.program)
        .policy_boxed(boxed)
        .build();
    let report = engine.run(steps);
    Ok(Json::obj([
        ("kind", Json::str("simulate")),
        ("spec", Json::str(&compiled.name)),
        ("policy", Json::str(policy)),
        ("steps_taken", Json::int(report.steps_taken)),
        ("deadlocked", Json::Bool(report.deadlocked)),
        (
            "schedule",
            Json::Str(render_schedule(&report.schedule, &universe)),
        ),
    ]))
}

/// `conformance`: replays a recorded trace (the plain-text
/// `Schedule::parse_lines` format) against the spec.
///
/// # Errors
///
/// Returns a message when the trace does not parse against the spec's
/// universe.
pub fn conformance_json(compiled: &Compiled, trace: &str) -> Result<Json, String> {
    let universe = compiled.universe();
    let schedule = Schedule::parse_lines(trace, universe).map_err(|e| format!("trace: {e}"))?;
    let mut members = vec![
        ("kind".to_owned(), Json::str("conformance")),
        ("spec".to_owned(), Json::str(&compiled.name)),
        ("steps".to_owned(), Json::int(schedule.len())),
    ];
    match conformance(&compiled.program, &schedule) {
        Verdict::Conforms => {
            members.push(("verdict".to_owned(), Json::str("conforms")));
        }
        Verdict::Violation { step, violated } => {
            members.push(("verdict".to_owned(), Json::str("violation")));
            members.push(("step".to_owned(), Json::int(step)));
            members.push((
                "violated".to_owned(),
                Json::Arr(violated.into_iter().map(Json::Str).collect()),
            ));
        }
    }
    Ok(Json::Obj(members))
}

/// `lint`: runs the static analyzer and wraps its machine-readable
/// diagnostics. `failed` applies the CLI's exit-code rule (errors
/// always fail; warnings fail under `deny_warnings`).
///
/// # Errors
///
/// Returns a rendered `line:column` message when the spec does not
/// parse or compile.
pub fn lint_json(spec_name: &str, source: &str, deny_warnings: bool) -> Result<Json, String> {
    let diagnostics = moccml_analyze::analyze_str(source).map_err(|e| {
        let (line, column) = e.position();
        format!("{line}:{column}: {e}")
    })?;
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == moccml_analyze::Severity::Error)
        .count();
    let warnings = diagnostics
        .iter()
        .filter(|d| d.severity == moccml_analyze::Severity::Warn)
        .count();
    // reuse the analyzer's own JSON rendering, re-parsed into the
    // protocol's value tree so the diagnostics array is embedded (not
    // double-encoded as a string)
    let rendered = moccml_analyze::render_json(spec_name, &diagnostics);
    let parsed = Json::parse(&rendered).map_err(|e| format!("internal: lint JSON: {e}"))?;
    Ok(Json::obj([
        ("kind", Json::str("lint")),
        ("spec", Json::str(spec_name)),
        ("errors", Json::int(errors)),
        ("warnings", Json::int(warnings)),
        (
            "failed",
            Json::Bool(errors > 0 || (deny_warnings && warnings > 0)),
        ),
        ("diagnostics", parsed),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALT: &str = "spec alt {\n  events a, b;\n  constraint alt = alternates(a, b);\n  assert never((a && b));\n  assert never(b);\n}\n";

    fn compiled() -> Compiled {
        moccml_lang::compile_str(ALT).expect("compiles")
    }

    #[test]
    fn check_json_matches_the_text_verdicts() {
        let c = compiled();
        let json = check_json(&c, &ExploreOptions::default(), &mut no_progress());
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("check"));
        assert_eq!(json.get("violated").and_then(Json::as_bool), Some(true));
        let props = json
            .get("properties")
            .and_then(Json::as_arr)
            .expect("array");
        assert_eq!(props.len(), 2);
        assert_eq!(props[0].get("status").and_then(Json::as_str), Some("holds"));
        let violated = &props[1];
        assert_eq!(
            violated.get("status").and_then(Json::as_str),
            Some("violated")
        );
        let witness = violated.get("witness").expect("witness");
        assert_eq!(witness.get("steps").and_then(Json::as_i64), Some(2));
        assert_eq!(
            witness.get("schedule").and_then(Json::as_str),
            Some("a ; b"),
            "schedule rendering matches the text CLI"
        );
        assert!(violated.get("minimized").is_some());
    }

    #[test]
    fn check_json_stopped_early_reports_undetermined() {
        let c = compiled();
        let mut stop = |_: usize, _: usize, _: usize| VisitControl::Stop;
        let json = check_json(&c, &ExploreOptions::default(), &mut stop);
        let props = json
            .get("properties")
            .and_then(Json::as_arr)
            .expect("array");
        for p in props {
            assert_eq!(
                p.get("status").and_then(Json::as_str),
                Some("undetermined"),
                "a stopped check never invents a verdict"
            );
        }
    }

    #[test]
    fn explore_json_reports_the_pam_metrics() {
        let c = compiled();
        let json = explore_json(&c, &ExploreOptions::default(), &mut no_progress());
        assert_eq!(json.get("states").and_then(Json::as_i64), Some(2));
        assert_eq!(json.get("truncated").and_then(Json::as_bool), Some(false));
        let schedules = json.get("schedules").and_then(Json::as_arr).expect("array");
        assert_eq!(schedules.len(), 4);
        assert_eq!(schedules[0].get("count").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn simulate_and_conformance_round_trip() {
        let c = compiled();
        let sim = simulate_json(&c, 4, "lexicographic", 42).expect("simulates");
        assert_eq!(sim.get("steps_taken").and_then(Json::as_i64), Some(4));
        assert_eq!(
            sim.get("schedule").and_then(Json::as_str),
            Some("a ; b ; a ; b")
        );
        assert!(simulate_json(&c, 1, "bogus", 0).is_err());

        let good = conformance_json(&c, "a\nb\n").expect("parses");
        assert_eq!(good.get("verdict").and_then(Json::as_str), Some("conforms"));
        let bad = conformance_json(&c, "a\na\n").expect("parses");
        assert_eq!(bad.get("verdict").and_then(Json::as_str), Some("violation"));
        assert_eq!(bad.get("step").and_then(Json::as_i64), Some(1));
        assert!(conformance_json(&c, "a\nzzz\n").is_err());
    }

    #[test]
    fn smc_json_estimates_and_carries_minimized_witnesses() {
        let c = compiled();
        let options =
            smc_options(Some(0.1), Some(0.05), None, None, Some(7), Some(2)).expect("valid knobs");
        let recorder = moccml_obs::Recorder::disabled();
        let json = smc_json(&c, &options, &SmcRun::new(&recorder));
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("smc"));
        assert_eq!(
            json.get("mode").and_then(Json::as_str),
            Some("fixed-sample")
        );
        assert_eq!(json.get("samples").and_then(Json::as_i64), Some(185));
        assert_eq!(json.get("violated").and_then(Json::as_bool), Some(true));
        let props = json
            .get("properties")
            .and_then(Json::as_arr)
            .expect("array");
        assert_eq!(props.len(), 2);
        // never((a && b)) holds on every sampled trace
        assert_eq!(
            props[0].get("verdict").and_then(Json::as_str),
            Some("estimated")
        );
        assert_eq!(props[0].get("violations").and_then(Json::as_i64), Some(0));
        assert!(props[0].get("witness").is_none());
        // never(b) is violated on every trace: estimate 1, witness `b`
        assert_eq!(props[1].get("estimate").and_then(Json::as_f64), Some(1.0));
        let witness = props[1].get("witness").expect("witness");
        assert_eq!(
            witness.get("schedule").and_then(Json::as_str),
            Some("a ; b"),
            "minimized witness in the shared schedule rendering"
        );

        // sequential mode names its threshold and decides
        let seq = smc_options(Some(0.1), Some(0.05), Some(0.5), None, Some(7), None)
            .expect("valid knobs");
        let json = smc_json(&c, &seq, &SmcRun::new(&recorder));
        assert_eq!(json.get("mode").and_then(Json::as_str), Some("sequential"));
        assert_eq!(json.get("threshold").and_then(Json::as_f64), Some(0.5));
        let props = json
            .get("properties")
            .and_then(Json::as_arr)
            .expect("array");
        assert_eq!(
            props[0].get("verdict").and_then(Json::as_str),
            Some("below-threshold")
        );
        assert_eq!(
            props[1].get("verdict").and_then(Json::as_str),
            Some("above-threshold")
        );
    }

    #[test]
    fn smc_options_reject_out_of_range_knobs() {
        assert!(smc_options(Some(0.0), None, None, None, None, None).is_err());
        assert!(smc_options(None, Some(1.0), None, None, None, None).is_err());
        assert!(smc_options(None, None, Some(-0.5), None, None, None).is_err());
        assert!(smc_options(None, None, None, Some(0), None, None).is_err());
        // zero workers clamp up instead of erroring (mirrors serve)
        let clamped = smc_options(None, None, None, None, None, Some(0)).expect("clamps");
        assert_eq!(clamped.workers, 1);
    }

    #[test]
    fn lint_json_wraps_the_analyzer() {
        const WARNY: &str = "spec s {\n  events a, b, orphan;\n  constraint c = alternates(a, b);\n  assert never((a && b));\n}\n";
        let json = lint_json("s.mcc", WARNY, false).expect("analyzes");
        assert_eq!(json.get("warnings").and_then(Json::as_i64), Some(1));
        assert_eq!(json.get("failed").and_then(Json::as_bool), Some(false));
        let denied = lint_json("s.mcc", WARNY, true).expect("analyzes");
        assert_eq!(denied.get("failed").and_then(Json::as_bool), Some(true));
        let diags = json
            .get("diagnostics")
            .and_then(Json::as_arr)
            .expect("array");
        assert!(!diags.is_empty());
        assert!(lint_json("s.mcc", "spec broken {", false).is_err());
    }
}
