//! The `moccml` CLI entry point — see [`moccml_serve::cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let code = moccml_serve::cli::run(&args, &mut out);
    if code == moccml_serve::cli::EXIT_ERROR {
        eprint!("{out}");
    } else {
        print!("{out}");
    }
    ExitCode::from(u8::try_from(code).unwrap_or(2))
}
