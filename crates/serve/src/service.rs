//! The verification service: a bounded job queue in front of a fixed
//! worker pool, the compiled-program cache, per-request budgets with
//! cooperative cancellation, and the metrics the `status` method
//! reports.
//!
//! The service is transport-agnostic: callers hand request lines to
//! [`Service::handle_line`] together with an [`EventSink`] that
//! receives the response events, and the TCP front end
//! ([`crate::server`]) is one thin caller among others (the bundled
//! client, the tests and the benches drive the same entry point via
//! [`Service::call`]).
//!
//! Every accepted job runs under three budgets — a state bound, a
//! depth bound and a wall-clock deadline, each clamped to the service
//! caps — and checks a cancellation flag at the explorer's periodic
//! progress checkpoints, so a `cancel` request stops a runaway
//! exploration at the next checkpoint without poisoning the worker:
//! the worker thread survives and picks up the next job.

use crate::cache::{CacheStats, SpecCache};
use crate::json::Json;
use crate::metrics::{self, Histogram};
use crate::ops;
use crate::protocol::{self, Method, Request};
use moccml_engine::{ExploreOptions, VisitControl};
use moccml_obs::Recorder;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service-wide limits and defaults. Every per-request option is
/// clamped to these caps before a job runs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Compiled-spec cache capacity (entries).
    pub cache_capacity: usize,
    /// Maximum queued (not yet running) jobs; submissions beyond this
    /// are rejected with a `queue full` error.
    pub queue_depth: usize,
    /// Wall-clock budget applied when a request names none (ms).
    pub default_timeout_ms: u64,
    /// Hard wall-clock cap (ms); request timeouts clamp to this.
    pub max_timeout_ms: u64,
    /// Hard cap on a job's exploration state bound.
    pub max_states: usize,
    /// Hard cap on a job's exploration depth bound.
    pub max_depth: usize,
    /// Hard cap on a job's simulation steps.
    pub max_steps: usize,
    /// Hard cap on a job's exploration worker threads.
    pub max_job_workers: usize,
    /// Minimum interval between `progress` events per job (ms); 0
    /// emits one per checkpoint.
    pub progress_interval_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            cache_capacity: 32,
            queue_depth: 64,
            default_timeout_ms: 30_000,
            max_timeout_ms: 300_000,
            max_states: 1_000_000,
            max_depth: usize::MAX,
            max_steps: 100_000,
            max_job_workers: 4,
            progress_interval_ms: 200,
        }
    }
}

/// Receives response events. Implementations must tolerate being
/// called from worker threads.
pub trait EventSink: Send + Sync {
    /// Delivers one event (one line on the wire).
    fn emit(&self, event: &Json);
}

/// An in-memory sink collecting events, for tests and [`Service::call`].
#[derive(Default)]
pub struct CollectingSink {
    events: Mutex<Vec<Json>>,
    cv: Condvar,
}

impl CollectingSink {
    /// A snapshot of everything emitted so far.
    #[must_use]
    pub fn events(&self) -> Vec<Json> {
        self.events.lock().expect("sink lock").clone()
    }

    /// Blocks until an event with `"event"` ∈ {`result`, `error`,
    /// `cancelled`} and the given id has been emitted, then returns a
    /// snapshot. Panics after `timeout` (tests should never hang).
    #[must_use]
    pub fn wait_terminal(&self, id: &str, timeout: Duration) -> Vec<Json> {
        let deadline = Instant::now() + timeout;
        let mut events = self.events.lock().expect("sink lock");
        loop {
            if events.iter().any(|e| is_terminal_for(e, id)) {
                return events.clone();
            }
            let now = Instant::now();
            assert!(
                now < deadline,
                "no terminal event for `{id}` within {timeout:?}"
            );
            let (guard, _) = self
                .cv
                .wait_timeout(events, deadline - now)
                .expect("sink lock");
            events = guard;
        }
    }
}

fn is_terminal_for(event: &Json, id: &str) -> bool {
    event.get("id").and_then(Json::as_str) == Some(id)
        && matches!(
            event.get("event").and_then(Json::as_str),
            Some("result" | "error" | "cancelled")
        )
}

impl EventSink for CollectingSink {
    fn emit(&self, event: &Json) {
        self.events.lock().expect("sink lock").push(event.clone());
        self.cv.notify_all();
    }
}

/// What [`Service::handle_line`] tells the transport to do next.
#[derive(Debug, PartialEq, Eq)]
pub enum Dispatch {
    /// Keep reading lines.
    Continue,
    /// A `shutdown` request was accepted: drain the service (e.g. via
    /// [`Service::shutdown`]), emit `result` for this id, then stop.
    Shutdown {
        /// The shutdown request's id, for the final `result` event.
        id: String,
    },
}

struct QueuedJob {
    request: Request,
    sink: Arc<dyn EventSink>,
}

/// Mutable queue state, all under one lock so the `queued`/`in_flight`
/// numbers in `status` are a consistent snapshot.
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    in_flight: usize,
    shutting_down: bool,
}

struct JobState {
    cancel: AtomicBool,
}

struct Inner {
    config: ServiceConfig,
    cache: Mutex<SpecCache>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    drain_cv: Condvar,
    jobs: Mutex<HashMap<String, Arc<JobState>>>,
    metrics: Mutex<HashMap<Method, Histogram>>,
    /// Service-wide roll-up of every job's explorer counters and peak
    /// gauges (no spans — those stay per-job), read by the `metrics`
    /// method's exposition.
    obs: Recorder,
    started: Instant,
}

/// The verification service. Dropping it shuts it down gracefully
/// (drains queued jobs, joins the workers).
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Service {
    /// Starts a service with `config.workers` worker threads.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Service {
        let worker_count = config.workers.max(1);
        let inner = Arc::new(Inner {
            cache: Mutex::new(SpecCache::new(config.cache_capacity)),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                in_flight: 0,
                shutting_down: false,
            }),
            queue_cv: Condvar::new(),
            drain_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            metrics: Mutex::new(HashMap::new()),
            obs: Recorder::new(),
            started: Instant::now(),
            config,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("moccml-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("worker thread spawns")
            })
            .collect();
        Service {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Decodes and dispatches one request line, emitting all response
    /// events to `sink` (synchronously for `status`/`cancel`/rejects,
    /// from a worker thread for jobs).
    pub fn handle_line(&self, line: &str, sink: &Arc<dyn EventSink>) -> Dispatch {
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(message) => {
                // best-effort id so the client can correlate the error
                let id = Json::parse(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Json::as_str).map(str::to_owned))
                    .unwrap_or_default();
                sink.emit(&protocol::error(&id, &message));
                return Dispatch::Continue;
            }
        };
        match request.method {
            Method::Status => {
                sink.emit(&protocol::accepted(&request.id, Method::Status));
                sink.emit(&protocol::result(&request.id, self.status_json()));
                Dispatch::Continue
            }
            Method::Metrics => {
                sink.emit(&protocol::accepted(&request.id, Method::Metrics));
                sink.emit(&protocol::result(&request.id, self.metrics_json()));
                Dispatch::Continue
            }
            Method::Cancel => {
                sink.emit(&protocol::accepted(&request.id, Method::Cancel));
                let target = request.target.clone().unwrap_or_default();
                let found = match self.inner.jobs.lock().expect("jobs lock").get(&target) {
                    Some(state) => {
                        state.cancel.store(true, Ordering::Relaxed);
                        true
                    }
                    None => false,
                };
                let payload = Json::obj([
                    ("kind", Json::str("cancel")),
                    ("target", Json::str(&target)),
                    ("found", Json::Bool(found)),
                ]);
                sink.emit(&protocol::result(&request.id, payload));
                Dispatch::Continue
            }
            Method::Shutdown => {
                sink.emit(&protocol::accepted(&request.id, Method::Shutdown));
                self.begin_shutdown();
                Dispatch::Shutdown { id: request.id }
            }
            _ => {
                self.submit(request, sink);
                Dispatch::Continue
            }
        }
    }

    /// Enqueues a job request, emitting `accepted` or a rejection
    /// `error` (`queue full`, duplicate id, shutting down).
    fn submit(&self, request: Request, sink: &Arc<dyn EventSink>) {
        {
            let mut jobs = self.inner.jobs.lock().expect("jobs lock");
            if jobs.contains_key(&request.id) {
                sink.emit(&protocol::error(
                    &request.id,
                    &format!(
                        "duplicate id `{}`: a request with this id is in flight",
                        request.id
                    ),
                ));
                return;
            }
            let mut queue = self.inner.queue.lock().expect("queue lock");
            if queue.shutting_down {
                sink.emit(&protocol::error(&request.id, "service is shutting down"));
                return;
            }
            if queue.jobs.len() >= self.inner.config.queue_depth {
                sink.emit(&protocol::error(&request.id, "queue full"));
                return;
            }
            // registered before the job starts so cancel-before-start
            // is honoured at pickup
            jobs.insert(
                request.id.clone(),
                Arc::new(JobState {
                    cancel: AtomicBool::new(false),
                }),
            );
            sink.emit(&protocol::accepted(&request.id, request.method));
            queue.jobs.push_back(QueuedJob {
                request,
                sink: Arc::clone(sink),
            });
        }
        self.inner.queue_cv.notify_one();
    }

    /// Convenience for tests, benches and the CLI: dispatches `line`
    /// with a fresh [`CollectingSink`], blocks until the terminal
    /// event, and returns every event emitted for it.
    #[must_use]
    pub fn call(&self, line: &str) -> Vec<Json> {
        let sink = Arc::new(CollectingSink::default());
        let dyn_sink: Arc<dyn EventSink> = Arc::clone(&sink) as Arc<dyn EventSink>;
        match self.handle_line(line, &dyn_sink) {
            Dispatch::Continue => {
                let id = Json::parse(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Json::as_str).map(str::to_owned))
                    .unwrap_or_default();
                sink.wait_terminal(&id, Duration::from_secs(600))
            }
            Dispatch::Shutdown { id } => {
                self.shutdown();
                dyn_sink.emit(&protocol::result(
                    &id,
                    Json::obj([("kind", Json::str("shutdown"))]),
                ));
                sink.events()
            }
        }
    }

    /// Marks the service as shutting down: no new jobs are accepted,
    /// idle workers exit once the queue drains.
    pub fn begin_shutdown(&self) {
        self.inner.queue.lock().expect("queue lock").shutting_down = true;
        self.inner.queue_cv.notify_all();
    }

    /// Graceful shutdown: stops intake, waits for queued and in-flight
    /// jobs to finish, and joins the worker threads. Idempotent.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        {
            let mut queue = self.inner.queue.lock().expect("queue lock");
            while !queue.jobs.is_empty() || queue.in_flight > 0 {
                queue = self.inner.drain_cv.wait(queue).expect("queue lock");
            }
        }
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("workers lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// The `status` result payload.
    #[must_use]
    pub fn status_json(&self) -> Json {
        let cache = self.inner.cache.lock().expect("cache lock").stats();
        let (queued, in_flight) = {
            let queue = self.inner.queue.lock().expect("queue lock");
            (queue.jobs.len(), queue.in_flight)
        };
        let metrics = self.inner.metrics.lock().expect("metrics lock");
        // fixed method order so status output is stable
        let all = [
            Method::Check,
            Method::Explore,
            Method::Simulate,
            Method::Conformance,
            Method::Smc,
            Method::Lint,
        ];
        let methods = all
            .iter()
            .filter_map(|m| metrics.get(m).map(|h| (m, h)))
            .map(|(m, h)| {
                Json::obj([
                    ("method", Json::str(m.name())),
                    (
                        "count",
                        Json::Int(i64::try_from(h.count()).unwrap_or(i64::MAX)),
                    ),
                    (
                        "mean_us",
                        Json::Int(i64::try_from(h.mean_us()).unwrap_or(i64::MAX)),
                    ),
                    (
                        "p50_us",
                        Json::Int(i64::try_from(h.quantile_us(0.5)).unwrap_or(i64::MAX)),
                    ),
                    (
                        "p95_us",
                        Json::Int(i64::try_from(h.quantile_us(0.95)).unwrap_or(i64::MAX)),
                    ),
                    (
                        "max_us",
                        Json::Int(i64::try_from(h.max_us()).unwrap_or(i64::MAX)),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("kind", Json::str("status")),
            (
                "uptime_ms",
                Json::Int(
                    i64::try_from(self.inner.started.elapsed().as_millis()).unwrap_or(i64::MAX),
                ),
            ),
            ("cache", cache_json(&cache)),
            (
                "queue",
                Json::obj([
                    ("queued", Json::int(queued)),
                    ("capacity", Json::int(self.inner.config.queue_depth)),
                    ("in_flight", Json::int(in_flight)),
                ]),
            ),
            ("methods", Json::Arr(methods)),
        ])
    }

    /// The combined explorer/cache/queue/latency view as Prometheus
    /// text exposition (format 0.0.4) — what the `metrics` method
    /// wraps. Every line passes [`moccml_obs::expose::validate`].
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let cache = self.inner.cache.lock().expect("cache lock").stats();
        let (queued, in_flight) = {
            let queue = self.inner.queue.lock().expect("queue lock");
            (queue.jobs.len(), queue.in_flight)
        };
        let histograms = self.inner.metrics.lock().expect("metrics lock");
        // same fixed method order as `status`
        let methods: Vec<(Method, Histogram)> = [
            Method::Check,
            Method::Explore,
            Method::Simulate,
            Method::Conformance,
            Method::Smc,
            Method::Lint,
        ]
        .iter()
        .filter_map(|m| histograms.get(m).map(|h| (*m, h.clone())))
        .collect();
        drop(histograms);
        metrics::exposition(
            u64::try_from(self.inner.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            &cache,
            queued,
            in_flight,
            &methods,
            &self.inner.obs.snapshot(),
        )
    }

    /// The `metrics` result payload: the exposition text wrapped in
    /// one JSON member, so the event stream stays line-oriented.
    #[must_use]
    pub fn metrics_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str("metrics")),
            ("exposition", Json::Str(self.metrics_text())),
        ])
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn cache_json(stats: &CacheStats) -> Json {
    Json::obj([
        ("entries", Json::int(stats.entries)),
        ("capacity", Json::int(stats.capacity)),
        (
            "hits",
            Json::Int(i64::try_from(stats.hits).unwrap_or(i64::MAX)),
        ),
        (
            "misses",
            Json::Int(i64::try_from(stats.misses).unwrap_or(i64::MAX)),
        ),
        (
            "evictions",
            Json::Int(i64::try_from(stats.evictions).unwrap_or(i64::MAX)),
        ),
    ])
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    queue.in_flight += 1;
                    break job;
                }
                if queue.shutting_down {
                    return;
                }
                queue = inner.queue_cv.wait(queue).expect("queue lock");
            }
        };
        let started = Instant::now();
        let method = job.request.method;
        let terminal = execute(inner, &job.request, &job.sink);
        // metrics and the id registry settle *before* the terminal
        // event goes out, so a client that saw the result observes the
        // updated `status` and can immediately reuse the id
        inner
            .metrics
            .lock()
            .expect("metrics lock")
            .entry(method)
            .or_default()
            .record(started.elapsed());
        inner
            .jobs
            .lock()
            .expect("jobs lock")
            .remove(&job.request.id);
        job.sink.emit(&terminal);
        {
            let mut queue = inner.queue.lock().expect("queue lock");
            queue.in_flight -= 1;
        }
        inner.drain_cv.notify_all();
    }
}

/// Why a job's progress observer stopped the operation early.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Interrupt {
    Cancelled,
    TimedOut,
}

/// Runs one job and returns its terminal event (`result`, `error` or
/// `cancelled`); the caller emits it after settling metrics and the id
/// registry. Progress events are emitted directly to `sink`.
fn execute(inner: &Arc<Inner>, request: &Request, sink: &Arc<dyn EventSink>) -> Json {
    let id = &request.id;
    let state = inner
        .jobs
        .lock()
        .expect("jobs lock")
        .get(id)
        .cloned()
        .expect("job state registered at submit");
    if state.cancel.load(Ordering::Relaxed) {
        return protocol::cancelled(id);
    }
    let Some(spec) = request.spec.as_deref() else {
        return protocol::error(id, "request needs a `spec` (the .mcc text)");
    };
    let compiled = {
        let mut cache = inner.cache.lock().expect("cache lock");
        match cache.get_or_compile(spec) {
            Ok((compiled, _hit)) => compiled,
            Err(e) => {
                let (line, column) = e.position();
                return protocol::error(id, &format!("spec:{line}:{column}: {e}"));
            }
        }
    };
    let config = &inner.config;
    let options = &request.options;
    // live throughput counters for progress events; never part of the
    // (byte-compared) result payload
    let monitor = moccml_engine::ExploreMonitor::new();
    // per-job recorder: spans summarize onto this job's result
    // envelope, counters roll up into the service-wide exposition;
    // observationally inert either way
    let job_obs = Recorder::new();
    let explore_options = ExploreOptions::default()
        .with_monitor(&monitor)
        .with_recorder(&job_obs)
        .with_max_states(options.max_states.unwrap_or(100_000).min(config.max_states))
        .with_max_depth(
            options
                .max_depth
                .unwrap_or(usize::MAX)
                .min(config.max_depth),
        )
        .with_workers(
            options
                .workers
                .unwrap_or(1)
                .clamp(1, config.max_job_workers.max(1)),
        );
    let timeout = Duration::from_millis(
        options
            .timeout_ms
            .unwrap_or(config.default_timeout_ms)
            .min(config.max_timeout_ms),
    );
    let deadline = Instant::now() + timeout;
    let throttle = Duration::from_millis(config.progress_interval_ms);
    let mut last_emit: Option<Instant> = None;
    let mut interrupt: Option<Interrupt> = None;
    // the smc sampler takes a shared-reference progress hook and a
    // plain cancel flag, so its interrupt bookkeeping is atomic rather
    // than captured mutably like the explorer's
    let smc_stop = AtomicBool::new(false);
    let smc_cancelled = AtomicBool::new(false);
    let smc_timed_out = AtomicBool::new(false);
    let mut progress = |states: usize, transitions: usize, depth: usize| {
        if state.cancel.load(Ordering::Relaxed) {
            interrupt = Some(Interrupt::Cancelled);
            return VisitControl::Stop;
        }
        if Instant::now() >= deadline {
            interrupt = Some(Interrupt::TimedOut);
            return VisitControl::Stop;
        }
        // transitions == usize::MAX marks a boundary-only checkpoint
        // (cancellation point, nothing meaningful to report)
        if transitions != usize::MAX && last_emit.is_none_or(|t| t.elapsed() >= throttle) {
            last_emit = Some(Instant::now());
            sink.emit(&protocol::progress_with(
                id,
                states,
                transitions,
                depth,
                &monitor.snapshot(),
            ));
        }
        VisitControl::Continue
    };
    let outcome = match request.method {
        Method::Check => Ok(ops::check_json(&compiled, &explore_options, &mut progress)),
        Method::Explore => Ok(ops::explore_json(
            &compiled,
            &explore_options,
            &mut progress,
        )),
        Method::Simulate => ops::simulate_json(
            &compiled,
            options.steps.unwrap_or(20).min(config.max_steps),
            options.policy.as_deref().unwrap_or("lexicographic"),
            options.seed.unwrap_or(42),
        ),
        Method::Conformance => match request.trace.as_deref() {
            Some(trace) => ops::conformance_json(&compiled, trace),
            None => Err("conformance needs a `trace` (Schedule::parse_lines text)".to_owned()),
        },
        Method::Lint => ops::lint_json(&compiled.name, spec, options.deny_warnings),
        Method::Smc => ops::smc_options(
            options.epsilon,
            options.delta,
            options.prob_threshold,
            options.max_trace_len,
            options.seed,
            Some(
                options
                    .workers
                    .unwrap_or(1)
                    .clamp(1, config.max_job_workers.max(1)),
            ),
        )
        .map(|smc_options| {
            let smc_last_emit: Mutex<Option<Instant>> = Mutex::new(None);
            let on_progress = |p: &moccml_smc::SmcProgress| {
                if state.cancel.load(Ordering::Relaxed) {
                    smc_cancelled.store(true, Ordering::Relaxed);
                    smc_stop.store(true, Ordering::Relaxed);
                } else if Instant::now() >= deadline {
                    smc_timed_out.store(true, Ordering::Relaxed);
                    smc_stop.store(true, Ordering::Relaxed);
                }
                let mut last = smc_last_emit.lock().expect("throttle lock");
                if last.is_none_or(|t| t.elapsed() >= throttle) {
                    *last = Some(Instant::now());
                    sink.emit(&protocol::smc_progress(
                        id,
                        p.traces,
                        p.violations,
                        p.planned,
                    ));
                }
            };
            let run = moccml_smc::SmcRun {
                recorder: &job_obs,
                progress: Some(&on_progress),
                cancel: Some(&smc_stop),
                progress_every: 0,
            };
            ops::smc_json(&compiled, &smc_options, &run)
        }),
        Method::Status | Method::Metrics | Method::Cancel | Method::Shutdown => {
            unreachable!("handled synchronously at dispatch")
        }
    };
    if smc_cancelled.load(Ordering::Relaxed) {
        interrupt = Some(Interrupt::Cancelled);
    } else if smc_timed_out.load(Ordering::Relaxed) {
        interrupt = Some(Interrupt::TimedOut);
    }
    let snap = job_obs.snapshot();
    // settle the roll-up before the terminal event goes out, so a
    // client that saw the result observes its job in `metrics`
    for (name, value) in &snap.counters {
        inner.obs.counter(name).add(*value);
    }
    for (name, value) in &snap.gauges {
        inner.obs.gauge(name).raise(*value);
    }
    match (interrupt, outcome) {
        (Some(Interrupt::Cancelled), _) => protocol::cancelled(id),
        (Some(Interrupt::TimedOut), _) => {
            protocol::error(id, &format!("timed out after {}ms", timeout.as_millis()))
        }
        (None, Ok(payload)) => protocol::with_spans(protocol::result(id, payload), &snap.spans),
        (None, Err(message)) => protocol::error(id, &message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALT: &str = "spec alt {\n  events a, b;\n  constraint alt = alternates(a, b);\n  assert never((a && b));\n  assert never(b);\n}\n";

    fn request(id: &str, method: &str, spec: &str) -> String {
        Json::obj([
            ("id", Json::str(id)),
            ("method", Json::str(method)),
            ("spec", Json::str(spec)),
        ])
        .to_line()
    }

    fn terminal(events: &[Json], id: &str) -> Json {
        events
            .iter()
            .find(|e| is_terminal_for(e, id))
            .unwrap_or_else(|| panic!("no terminal event for {id}: {events:?}"))
            .clone()
    }

    #[test]
    fn check_job_streams_accepted_then_result() {
        let service = Service::new(ServiceConfig::default());
        let events = service.call(&request("r1", "check", ALT));
        assert_eq!(
            events[0].get("event").and_then(Json::as_str),
            Some("accepted")
        );
        let result = terminal(&events, "r1");
        assert_eq!(result.get("event").and_then(Json::as_str), Some("result"));
        let payload = result.get("result").expect("payload");
        assert_eq!(payload.get("kind").and_then(Json::as_str), Some("check"));
        assert_eq!(payload.get("violated").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn smc_job_estimates_with_progress_and_rejects_bad_knobs() {
        let service = Service::new(ServiceConfig {
            progress_interval_ms: 0,
            ..ServiceConfig::default()
        });
        let line = r#"{"id":"s1","method":"smc","spec":SPEC,"epsilon":0.1,"seed":7}"#
            .replace("SPEC", &Json::str(ALT).to_line());
        let events = service.call(&line);
        let result = terminal(&events, "s1");
        assert_eq!(result.get("event").and_then(Json::as_str), Some("result"));
        let payload = result.get("result").expect("payload");
        assert_eq!(payload.get("kind").and_then(Json::as_str), Some("smc"));
        assert_eq!(payload.get("violated").and_then(Json::as_bool), Some(true));
        // the aggregator's final checkpoint always emits a progress event
        assert!(
            events.iter().any(|e| {
                e.get("event").and_then(Json::as_str) == Some("progress")
                    && e.get("traces").is_some()
            }),
            "{events:?}"
        );
        // out-of-range knobs become a protocol error, not a panic
        let bad = r#"{"id":"s2","method":"smc","spec":SPEC,"epsilon":7.0}"#
            .replace("SPEC", &Json::str(ALT).to_line());
        let events = service.call(&bad);
        let e = terminal(&events, "s2");
        assert!(
            e.get("error")
                .and_then(Json::as_str)
                .expect("msg")
                .contains("epsilon"),
            "{e:?}"
        );
        // the smc latency histogram lands in status under its own name
        let events = service.call(r#"{"id":"st","method":"status"}"#);
        let payload = terminal(&events, "st")
            .get("result")
            .cloned()
            .expect("payload");
        let methods = payload
            .get("methods")
            .and_then(Json::as_arr)
            .expect("methods");
        assert!(
            methods
                .iter()
                .any(|m| m.get("method").and_then(Json::as_str) == Some("smc")),
            "{methods:?}"
        );
    }

    #[test]
    fn status_reports_cache_hits_and_latencies() {
        let service = Service::new(ServiceConfig::default());
        let _ = service.call(&request("r1", "explore", ALT));
        let _ = service.call(&request("r2", "explore", ALT));
        let events = service.call(r#"{"id":"s1","method":"status"}"#);
        let payload = terminal(&events, "s1")
            .get("result")
            .cloned()
            .expect("payload");
        let cache = payload.get("cache").expect("cache");
        assert_eq!(cache.get("hits").and_then(Json::as_i64), Some(1));
        assert_eq!(cache.get("misses").and_then(Json::as_i64), Some(1));
        let methods = payload
            .get("methods")
            .and_then(Json::as_arr)
            .expect("methods");
        assert_eq!(methods.len(), 1);
        assert_eq!(
            methods[0].get("method").and_then(Json::as_str),
            Some("explore")
        );
        assert_eq!(methods[0].get("count").and_then(Json::as_i64), Some(2));
    }

    #[test]
    fn metrics_exposition_covers_explorer_cache_and_latency() {
        let service = Service::new(ServiceConfig::default());
        let _ = service.call(&request("r1", "check", ALT));
        let events = service.call(r#"{"id":"m1","method":"metrics"}"#);
        let payload = terminal(&events, "m1")
            .get("result")
            .cloned()
            .expect("payload");
        assert_eq!(payload.get("kind").and_then(Json::as_str), Some("metrics"));
        let text = payload
            .get("exposition")
            .and_then(Json::as_str)
            .expect("exposition text")
            .to_owned();
        moccml_obs::expose::validate(&text).expect("valid exposition");
        assert!(
            text.contains("moccml_requests_total{method=\"check\"} 1"),
            "{text}"
        );
        assert!(text.contains("moccml_cache_misses_total 1"), "{text}");
        let expansions = text
            .lines()
            .find_map(|l| l.strip_prefix("moccml_explore_expansions_total "))
            .and_then(|v| v.parse::<u64>().ok())
            .expect("expansions sample");
        assert!(expansions > 0, "job counters rolled up: {text}");
    }

    #[test]
    fn result_envelopes_carry_span_summaries_outside_the_payload() {
        let service = Service::new(ServiceConfig::default());
        let events = service.call(&request("r1", "check", ALT));
        let result = terminal(&events, "r1");
        let spans = result
            .get("spans")
            .and_then(Json::as_arr)
            .expect("span summary on the envelope");
        let names: Vec<&str> = spans
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"check"), "{names:?}");
        assert!(names.contains(&"explore"), "{names:?}");
        // the byte-compared payload stays free of timing data
        assert!(result
            .get("result")
            .expect("payload")
            .get("spans")
            .is_none());
    }

    #[test]
    fn malformed_and_invalid_requests_are_rejected() {
        let service = Service::new(ServiceConfig::default());
        let events = service.call("not json at all");
        assert_eq!(events[0].get("event").and_then(Json::as_str), Some("error"));
        let events = service.call(r#"{"id":"x","method":"check"}"#);
        let e = terminal(&events, "x");
        assert!(
            e.get("error")
                .and_then(Json::as_str)
                .expect("msg")
                .contains("spec"),
            "{e:?}"
        );
        let events = service.call(&request("b1", "check", "spec broken {"));
        let e = terminal(&events, "b1");
        assert!(
            e.get("error")
                .and_then(Json::as_str)
                .expect("msg")
                .contains("spec:"),
            "compile errors carry line:column: {e:?}"
        );
    }

    #[test]
    fn timeout_budget_interrupts_a_long_job() {
        let service = Service::new(ServiceConfig::default());
        // two chained unbounded precedences: the space is astronomically
        // large, so only the deadline can end an unbounded exploration
        let big = "spec big {\n  events a, b, c;\n  constraint c1 = precedes(a, b);\n  constraint c2 = precedes(b, c);\n}\n";
        let line =
            r#"{"id":"t1","method":"explore","spec":SPEC,"timeout_ms":50,"max_states":100000000}"#
                .replace("SPEC", &Json::str(big).to_line());
        let events = service.call(&line);
        let e = terminal(&events, "t1");
        assert_eq!(e.get("event").and_then(Json::as_str), Some("error"));
        assert!(
            e.get("error")
                .and_then(Json::as_str)
                .expect("msg")
                .contains("timed out"),
            "{e:?}"
        );
        // the worker survives: the next job runs normally
        let events = service.call(&request("t2", "explore", ALT));
        assert_eq!(
            terminal(&events, "t2").get("event").and_then(Json::as_str),
            Some("result")
        );
    }

    #[test]
    fn cancel_stops_a_running_job_without_poisoning_the_pool() {
        let service = Service::new(ServiceConfig {
            workers: 1,
            progress_interval_ms: 0,
            ..ServiceConfig::default()
        });
        let big = "spec big {\n  events a, b, c;\n  constraint c1 = precedes(a, b);\n  constraint c2 = precedes(b, c);\n}\n";
        let sink = Arc::new(CollectingSink::default());
        let dyn_sink: Arc<dyn EventSink> = Arc::clone(&sink) as Arc<dyn EventSink>;
        let line = r#"{"id":"c1","method":"explore","spec":SPEC,"timeout_ms":60000,"max_states":100000000}"#
            .replace("SPEC", &Json::str(big).to_line());
        assert_eq!(service.handle_line(&line, &dyn_sink), Dispatch::Continue);
        // wait until the job demonstrably runs (first progress event)
        let deadline = Instant::now() + Duration::from_secs(30);
        while !sink
            .events()
            .iter()
            .any(|e| e.get("event").and_then(Json::as_str) == Some("progress"))
        {
            assert!(Instant::now() < deadline, "job never progressed");
            std::thread::sleep(Duration::from_millis(5));
        }
        let cancel_events = service.call(r#"{"id":"k1","method":"cancel","target":"c1"}"#);
        let cancel_result = terminal(&cancel_events, "k1");
        assert_eq!(
            cancel_result
                .get("result")
                .and_then(|r| r.get("found"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let events = sink.wait_terminal("c1", Duration::from_secs(30));
        let e = terminal(&events, "c1");
        assert_eq!(
            e.get("event").and_then(Json::as_str),
            Some("cancelled"),
            "a cancelled job never reports a verdict"
        );
        // the single worker is healthy afterwards
        let events = service.call(&request("c2", "check", ALT));
        assert_eq!(
            terminal(&events, "c2").get("event").and_then(Json::as_str),
            Some("result")
        );
    }

    #[test]
    fn cancel_before_start_and_unknown_targets() {
        // zero progress interval + 1 worker: occupy the worker, then
        // queue a second job and cancel it before it starts
        let service = Service::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let big = "spec big {\n  events a, b, c;\n  constraint c1 = precedes(a, b);\n  constraint c2 = precedes(b, c);\n}\n";
        let sink = Arc::new(CollectingSink::default());
        let dyn_sink: Arc<dyn EventSink> = Arc::clone(&sink) as Arc<dyn EventSink>;
        let slow =
            r#"{"id":"s","method":"explore","spec":SPEC,"timeout_ms":10000,"max_states":10000000}"#
                .replace("SPEC", &Json::str(big).to_line());
        let _ = service.handle_line(&slow, &dyn_sink);
        let _ = service.handle_line(&request("q", "check", ALT), &dyn_sink);
        let cancel_events = service.call(r#"{"id":"k","method":"cancel","target":"q"}"#);
        assert_eq!(
            terminal(&cancel_events, "k")
                .get("result")
                .and_then(|r| r.get("found"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let events = sink.wait_terminal("q", Duration::from_secs(60));
        assert_eq!(
            terminal(&events, "q").get("event").and_then(Json::as_str),
            Some("cancelled")
        );
        // unblock the slow job so Drop's shutdown is quick
        let _ = service.call(r#"{"id":"k2","method":"cancel","target":"s"}"#);
        let _ = sink.wait_terminal("s", Duration::from_secs(60));
        let not_found = service.call(r#"{"id":"k3","method":"cancel","target":"nope"}"#);
        assert_eq!(
            terminal(&not_found, "k3")
                .get("result")
                .and_then(|r| r.get("found"))
                .and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn duplicate_ids_and_shutdown_rejections() {
        let service = Service::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let big = "spec big {\n  events a, b, c;\n  constraint c1 = precedes(a, b);\n  constraint c2 = precedes(b, c);\n}\n";
        let sink = Arc::new(CollectingSink::default());
        let dyn_sink: Arc<dyn EventSink> = Arc::clone(&sink) as Arc<dyn EventSink>;
        let slow = r#"{"id":"dup","method":"explore","spec":SPEC,"timeout_ms":10000,"max_states":10000000}"#
            .replace("SPEC", &Json::str(big).to_line());
        let _ = service.handle_line(&slow, &dyn_sink);
        let _ = service.handle_line(&slow, &dyn_sink);
        let dup_error = sink
            .events()
            .iter()
            .find(|e| e.get("event").and_then(Json::as_str) == Some("error"))
            .cloned()
            .expect("duplicate rejected");
        assert!(
            dup_error
                .get("error")
                .and_then(Json::as_str)
                .expect("msg")
                .contains("duplicate id"),
            "{dup_error:?}"
        );
        let _ = service.call(r#"{"id":"k","method":"cancel","target":"dup"}"#);
        let _ = sink.wait_terminal("dup", Duration::from_secs(60));
        service.begin_shutdown();
        let events = service.call(&request("late", "check", ALT));
        assert!(terminal(&events, "late")
            .get("error")
            .and_then(Json::as_str)
            .expect("msg")
            .contains("shutting down"));
        service.shutdown();
    }

    #[test]
    fn shutdown_via_protocol_drains_and_reports() {
        let service = Service::new(ServiceConfig::default());
        let _ = service.call(&request("r1", "explore", ALT));
        let events = service.call(r#"{"id":"bye","method":"shutdown"}"#);
        let result = terminal(&events, "bye");
        assert_eq!(
            result
                .get("result")
                .and_then(|r| r.get("kind"))
                .and_then(Json::as_str),
            Some("shutdown")
        );
    }
}
