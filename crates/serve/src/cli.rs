//! The front door of the `moccml` binary: `serve` and `client` are
//! resolved here, `check`/`explore`/`simulate`/`conformance` gain a
//! `--format json` mode backed by the shared [`crate::ops`] schema,
//! and everything else — `lint`, the text modes, `--help` content —
//! is delegated unchanged to [`moccml_analyze::cli::run`] (which in
//! turn delegates to the frontend CLI).
//!
//! ```text
//! moccml serve  [--listen ADDR] [--workers N] [--cache-capacity K] [--queue-depth Q]
//! moccml client <ADDR> <script.jsonl>
//! moccml check|explore|simulate|conformance … [--format text|json]
//! ```
//!
//! Exit codes are uniform across every subcommand and both formats:
//! `0` success (all properties hold, trace conforms, clean lint,
//! client session all-green), `1` a verdict went against the input (a
//! violated property, nonconforming trace, deadlocked simulation,
//! denied lint, failed session), `2` usage, I/O, parse or compilation
//! errors. `crates/serve/tests/cli_exit_codes.rs` pins all three on
//! the installed binary.

use crate::json::Json;
use crate::ops;
use crate::server;
use crate::service::ServiceConfig;
use moccml_engine::{ExploreMonitor, ExploreOptions};
use moccml_obs::Recorder;
use moccml_smc::{check_statistical_observed, okamoto_sample_size, SmcRun, SmcVerdict};
use std::fmt::Write as _;

pub use moccml_lang::cli::{EXIT_ERROR, EXIT_OK, EXIT_VIOLATED};

const SERVE_USAGE: &str = "\
service:
  serve        run the verification daemon (NDJSON over TCP)
               [--listen ADDR] [--workers N] [--cache-capacity K] [--queue-depth Q]
  client       run a scripted session: moccml client <ADDR> <script.jsonl>

statistical:
  --statistical
               check: Monte-Carlo trace sampling (Okamoto budget, or
               Wald's SPRT with --prob-threshold) instead of exhaustive
               exploration; [--epsilon E] [--delta D]
               [--prob-threshold P] [--max-trace-len N] [--seed S]
               [--workers N] — the report is identical for any worker
               count given the same seed

formats:
  --format FMT check/explore/simulate/conformance output: text | json
               (default text; json prints one machine-readable object)
  --stats      check/explore/conformance: append throughput (states/sec
               and elapsed; explore adds peak frontier and interner
               occupancy) to the output
  --trace FILE record phase spans (parse/compile/check/explore/…) and
               explorer counters, then write a Chrome trace-event JSON
               to FILE and the raw event stream to FILE.jsonl
";

/// Runs the CLI on `args` (without the program name), writing all
/// output to `out`. Returns the process exit code.
///
/// The `serve` subcommand is the one exception to the pure-function
/// contract: the daemon streams its banner and runs until shutdown,
/// so it writes to the process stdout directly and `out` stays empty.
pub fn run(args: &[String], out: &mut String) -> i32 {
    let (args, trace_path) = match trace_flag(args) {
        Ok(split) => split,
        Err(message) => {
            let _ = writeln!(out, "error: {message}");
            return EXIT_ERROR;
        }
    };
    // recording is opt-in: without --trace every layer sees a no-op
    // recorder and the disabled fast path
    let recorder = if trace_path.is_some() {
        Recorder::new()
    } else {
        Recorder::disabled()
    };
    let code = run_recorded(&args, out, &recorder);
    if let Some(path) = trace_path {
        if let Err(message) = write_trace(&path, &recorder) {
            let _ = writeln!(out, "error: {message}");
            return EXIT_ERROR;
        }
    }
    code
}

fn run_recorded(args: &[String], out: &mut String, recorder: &Recorder) -> i32 {
    match args.first().map(String::as_str) {
        Some("serve") => match try_serve(&args[1..]) {
            Ok(code) => code,
            Err(message) => {
                let _ = writeln!(out, "error: {message}");
                EXIT_ERROR
            }
        },
        Some("client") => match try_client(&args[1..], out) {
            Ok(code) => code,
            Err(message) => {
                let _ = writeln!(out, "error: {message}");
                EXIT_ERROR
            }
        },
        Some("check") if args.iter().any(|a| a == "--statistical") => {
            match try_statistical(args, out, recorder) {
                Ok(code) => code,
                Err(message) => {
                    let _ = writeln!(out, "error: {message}");
                    EXIT_ERROR
                }
            }
        }
        Some("check" | "explore" | "simulate" | "conformance") => match json_format(args) {
            Ok(Some(stripped)) => match try_json(&stripped, out, recorder) {
                Ok(code) => code,
                Err(message) => {
                    let _ = writeln!(out, "error: {message}");
                    EXIT_ERROR
                }
            },
            Ok(None) => {
                let stripped = strip_text_format(args);
                moccml_analyze::cli::run_with(&stripped, out, recorder)
            }
            Err(message) => {
                let _ = writeln!(out, "error: {message}");
                EXIT_ERROR
            }
        },
        Some("--help" | "-h" | "help") => {
            let code = moccml_analyze::cli::run_with(args, out, recorder);
            out.push_str(SERVE_USAGE);
            code
        }
        _ => moccml_analyze::cli::run_with(args, out, recorder),
    }
}

/// Splits a `--trace <file>` flag off the argument list.
fn trace_flag(args: &[String]) -> Result<(Vec<String>, Option<String>), String> {
    let Some(i) = args.iter().position(|a| a == "--trace") else {
        return Ok((args.to_vec(), None));
    };
    let path = args
        .get(i + 1)
        .filter(|v| !v.starts_with("--"))
        .cloned()
        .ok_or("--trace needs an output file path")?;
    let mut stripped = args.to_vec();
    stripped.drain(i..=i + 1);
    Ok((stripped, Some(path)))
}

/// Writes the recorder's snapshot as Chrome trace-event (catapult)
/// JSON to `path` — loadable in `chrome://tracing` / Perfetto — plus
/// the raw JSONL event stream to `path.jsonl`.
fn write_trace(path: &str, recorder: &Recorder) -> Result<(), String> {
    let snapshot = recorder.snapshot();
    std::fs::write(path, moccml_obs::trace::catapult_json(&snapshot, "moccml"))
        .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
    let raw_path = format!("{path}.jsonl");
    std::fs::write(&raw_path, moccml_obs::trace::jsonl(&snapshot))
        .map_err(|e| format!("cannot write trace `{raw_path}`: {e}"))
}

/// `Some(args-without-the-format-flag)` when `--format json` is
/// present, `None` for text (explicit or default).
fn json_format(args: &[String]) -> Result<Option<Vec<String>>, String> {
    let Some(i) = args.iter().position(|a| a == "--format") else {
        return Ok(None);
    };
    match args.get(i + 1).map(String::as_str) {
        Some("json") => {
            let mut stripped = args.to_vec();
            stripped.drain(i..=i + 1);
            Ok(Some(stripped))
        }
        Some("text") => Ok(None),
        other => Err(format!(
            "--format expects `text` or `json`, got `{}`",
            other.unwrap_or("")
        )),
    }
}

/// Removes an explicit `--format text` so the delegated CLIs (which do
/// not know the flag) see their plain argument list.
fn strip_text_format(args: &[String]) -> Vec<String> {
    match args.iter().position(|a| a == "--format") {
        Some(i) => {
            let mut stripped = args.to_vec();
            stripped.drain(i..=i + 1);
            stripped
        }
        None => args.to_vec(),
    }
}

fn float_flag(args: &[String], name: &str) -> Result<Option<f64>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .map(Some)
            .ok_or_else(|| format!("{name} needs a number")),
    }
}

fn flag(args: &[String], name: &str) -> Result<Option<usize>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .map(Some)
            .ok_or_else(|| format!("{name} needs a non-negative integer")),
    }
}

fn string_flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} needs a value")),
    }
}

fn try_serve(args: &[String]) -> Result<i32, String> {
    let listen = string_flag(args, "--listen")?.unwrap_or_else(|| server::DEFAULT_ADDR.to_owned());
    let mut config = ServiceConfig::default();
    if let Some(n) = flag(args, "--workers")? {
        config.workers = n.max(1);
    }
    if let Some(n) = flag(args, "--cache-capacity")? {
        config.cache_capacity = n;
    }
    if let Some(n) = flag(args, "--queue-depth")? {
        config.queue_depth = n.max(1);
    }
    let mut stdout = std::io::stdout();
    server::serve(&listen, config, &mut stdout)?;
    Ok(EXIT_OK)
}

fn try_client(args: &[String], out: &mut String) -> Result<i32, String> {
    let (Some(addr), Some(script_path)) = (args.first(), args.get(1)) else {
        return Err("usage: moccml client <ADDR> <script.jsonl>".to_owned());
    };
    let script = std::fs::read_to_string(script_path)
        .map_err(|e| format!("cannot read `{script_path}`: {e}"))?;
    crate::client::run_script(addr, &script, out)
}

fn explore_options(args: &[String]) -> Result<ExploreOptions, String> {
    let mut options = ExploreOptions::default();
    if let Some(n) = flag(args, "--max-states")? {
        options = options.with_max_states(n);
    }
    if let Some(n) = flag(args, "--max-depth")? {
        options = options.with_max_depth(n);
    }
    if let Some(n) = flag(args, "--workers")? {
        options = options.with_workers(n);
    }
    Ok(options)
}

/// The `check --statistical` mode: Monte-Carlo trace sampling through
/// [`moccml_smc`] instead of exhaustive exploration. Text prints one
/// aligned row per property (plus the minimized witness when sampling
/// found one); `--format json` prints the [`ops::smc_json`] object —
/// byte-identical to a serve `smc` result payload, and invariant under
/// `--workers` for a fixed `--seed`.
fn try_statistical(args: &[String], out: &mut String, recorder: &Recorder) -> Result<i32, String> {
    let (json, mut args) = match json_format(args)? {
        Some(stripped) => (true, stripped),
        None => (false, strip_text_format(args)),
    };
    args.retain(|a| a != "--statistical");
    let Some(spec_path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        return Err("missing <spec.mcc> path".to_owned());
    };
    let source = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read `{spec_path}`: {e}"))?;
    let ast = {
        let _span = recorder.span("parse");
        moccml_lang::parse_spec(&source).map_err(|e| {
            let (line, column) = e.position();
            format!("{spec_path}:{line}:{column}: {e}")
        })?
    };
    let compiled = {
        let _span = recorder.span("compile");
        moccml_lang::compile(&ast).map_err(|e| {
            let (line, column) = e.position();
            format!("{spec_path}:{line}:{column}: {e}")
        })?
    };
    let rest = &args[2..];
    let options = ops::smc_options(
        float_flag(rest, "--epsilon")?,
        float_flag(rest, "--delta")?,
        float_flag(rest, "--prob-threshold")?,
        flag(rest, "--max-trace-len")?,
        flag(rest, "--seed")?.map(|s| s as u64),
        flag(rest, "--workers")?,
    )?;
    let run = SmcRun::new(recorder);
    if json {
        let payload = ops::smc_json(&compiled, &options, &run);
        let violated = payload.get("violated").and_then(Json::as_bool) == Some(true);
        let _ = writeln!(out, "{}", payload.to_line());
        return Ok(if violated { EXIT_VIOLATED } else { EXIT_OK });
    }
    let universe = compiled.universe();
    if compiled.props.is_empty() {
        let _ = writeln!(
            out,
            "spec `{}`: no properties to check (add `assert …;` items)",
            compiled.name
        );
        return Ok(EXIT_OK);
    }
    match options.prob_threshold {
        Some(threshold) => {
            let _ = writeln!(
                out,
                "statistical check (SPRT): threshold {threshold}, epsilon {}, delta {}",
                options.epsilon, options.delta
            );
        }
        None => {
            let _ = writeln!(
                out,
                "statistical check: epsilon {}, delta {} ({:.1}% confidence), {} traces",
                options.epsilon,
                options.delta,
                (1.0 - options.delta) * 100.0,
                okamoto_sample_size(options.epsilon, options.delta)
            );
        }
    }
    let mut violated = false;
    for prop in &compiled.props {
        let report = check_statistical_observed(&compiled.program, prop, &options, &run);
        violated |= report.witness.is_some() || report.verdict == SmcVerdict::AboveThreshold;
        let label = match report.verdict {
            SmcVerdict::Estimated => "estimated",
            SmcVerdict::AboveThreshold => "ABOVE",
            SmcVerdict::BelowThreshold => "below",
            SmcVerdict::Undecided => "undecided",
            SmcVerdict::Cancelled => "cancelled",
        };
        let _ = writeln!(
            out,
            "{:<40} {:<12} p = {:.4} in [{:.4}, {:.4}] ({} traces, {} violations)",
            prop.display(universe),
            label,
            report.estimate,
            report.ci_low,
            report.ci_high,
            report.traces,
            report.violations
        );
        if let Some(ce) = &report.witness {
            let _ = writeln!(
                out,
                "{:<40} witness (minimized, {} steps): {}",
                "",
                ce.schedule.len(),
                ops::render_schedule(&ce.schedule, universe)
            );
        }
    }
    Ok(if violated { EXIT_VIOLATED } else { EXIT_OK })
}

/// The `--format json` mode of `check`/`explore`/`simulate`/
/// `conformance`: prints exactly one line — the [`crate::ops`] result
/// object, identical to a serve `result` payload — and maps the
/// verdict to the usual exit code.
fn try_json(args: &[String], out: &mut String, recorder: &Recorder) -> Result<i32, String> {
    let command = args.first().expect("dispatched on the command").clone();
    let Some(spec_path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        return Err("missing <spec.mcc> path".to_owned());
    };
    let source = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read `{spec_path}`: {e}"))?;
    let ast = {
        let _span = recorder.span("parse");
        moccml_lang::parse_spec(&source).map_err(|e| {
            let (line, column) = e.position();
            format!("{spec_path}:{line}:{column}: {e}")
        })?
    };
    let compiled = {
        let _span = recorder.span("compile");
        moccml_lang::compile(&ast).map_err(|e| {
            let (line, column) = e.position();
            format!("{spec_path}:{line}:{column}: {e}")
        })?
    };
    let rest = &args[2..];
    let stats = rest.iter().any(|a| a == "--stats");
    let (payload, code) = match command.as_str() {
        "check" => {
            let options = explore_options(rest)?.with_recorder(recorder);
            let payload = if stats {
                ops::check_json_with_stats(&compiled, &options, &mut ops::no_progress())
            } else {
                ops::check_json(&compiled, &options, &mut ops::no_progress())
            };
            let violated = payload.get("violated").and_then(Json::as_bool) == Some(true);
            (payload, if violated { EXIT_VIOLATED } else { EXIT_OK })
        }
        "explore" => {
            let monitor = ExploreMonitor::new();
            let mut options = explore_options(rest)?.with_recorder(recorder);
            if stats {
                options = options.with_monitor(&monitor);
            }
            let mut payload = ops::explore_json(&compiled, &options, &mut ops::no_progress());
            if stats {
                payload = ops::with_metrics(payload, &monitor.snapshot());
            }
            (payload, EXIT_OK)
        }
        "simulate" => {
            let steps = flag(rest, "--steps")?.unwrap_or(20);
            let seed = flag(rest, "--seed")?.unwrap_or(42) as u64;
            let policy =
                string_flag(rest, "--policy")?.unwrap_or_else(|| "lexicographic".to_owned());
            let payload = {
                let _span = recorder.span("simulate");
                ops::simulate_json(&compiled, steps, &policy, seed)?
            };
            let deadlocked = payload.get("deadlocked").and_then(Json::as_bool) == Some(true);
            (payload, if deadlocked { EXIT_VIOLATED } else { EXIT_OK })
        }
        "conformance" => {
            let Some(trace_path) = rest.first().filter(|a| !a.starts_with("--")) else {
                return Err("conformance needs a trace file".to_owned());
            };
            let trace = std::fs::read_to_string(trace_path)
                .map_err(|e| format!("cannot read `{trace_path}`: {e}"))?;
            let started = std::time::Instant::now();
            let mut payload = {
                let _span = recorder.span("conformance");
                ops::conformance_json(&compiled, &trace)
                    .map_err(|e| format!("{trace_path}: {e}"))?
            };
            if stats {
                let steps = payload
                    .get("steps")
                    .and_then(Json::as_i64)
                    .and_then(|v| usize::try_from(v).ok())
                    .unwrap_or(0);
                payload = ops::with_throughput(payload, steps, started.elapsed());
            }
            let conforms = payload.get("verdict").and_then(Json::as_str) == Some("conforms");
            (payload, if conforms { EXIT_OK } else { EXIT_VIOLATED })
        }
        other => return Err(format!("unknown command `{other}`")),
    };
    let _ = writeln!(out, "{}", payload.to_line());
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALT: &str = "spec alt {\n  events a, b;\n  constraint alt = alternates(a, b);\n  assert never((a && b));\n  assert never(b);\n}\n";

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("moccml-serve-cli-{name}"));
        std::fs::write(&path, content).expect("temp file writes");
        path.to_str().expect("utf8 path").to_owned()
    }

    fn run_args(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(ToString::to_string).collect();
        let mut out = String::new();
        let code = run(&args, &mut out);
        (code, out)
    }

    #[test]
    fn json_check_matches_the_text_verdict() {
        let path = write_temp("alt.mcc", ALT);
        let (text_code, text_out) = run_args(&["check", &path]);
        let (json_code, json_out) = run_args(&["check", &path, "--format", "json"]);
        assert_eq!(text_code, EXIT_VIOLATED);
        assert_eq!(json_code, EXIT_VIOLATED, "{json_out}");
        let payload = Json::parse(json_out.trim()).expect("one JSON line");
        assert_eq!(payload.get("violated").and_then(Json::as_bool), Some(true));
        // the witness schedule is byte-identical across formats
        let schedule = payload
            .get("properties")
            .and_then(Json::as_arr)
            .and_then(|ps| ps[1].get("witness"))
            .and_then(|w| w.get("schedule"))
            .and_then(Json::as_str)
            .expect("witness schedule");
        assert!(text_out.contains(schedule), "{text_out} vs {schedule}");
    }

    #[test]
    fn json_explore_simulate_conformance() {
        let path = write_temp("alt2.mcc", ALT);
        let (code, out) = run_args(&["explore", &path, "--format", "json"]);
        assert_eq!(code, EXIT_OK);
        let payload = Json::parse(out.trim()).expect("JSON");
        assert_eq!(payload.get("states").and_then(Json::as_i64), Some(2));

        let (code, out) = run_args(&["simulate", &path, "--steps", "4", "--format", "json"]);
        assert_eq!(code, EXIT_OK);
        let payload = Json::parse(out.trim()).expect("JSON");
        assert_eq!(
            payload.get("schedule").and_then(Json::as_str),
            Some("a ; b ; a ; b")
        );

        let trace = write_temp("bad.trace", "a\na\n");
        let (code, out) = run_args(&["conformance", &path, &trace, "--format", "json"]);
        assert_eq!(code, EXIT_VIOLATED, "{out}");
        let payload = Json::parse(out.trim()).expect("JSON");
        assert_eq!(
            payload.get("verdict").and_then(Json::as_str),
            Some("violation")
        );
    }

    #[test]
    fn json_explore_stats_appends_counters() {
        let path = write_temp("alt-stats.mcc", ALT);
        let (code, out) = run_args(&["explore", &path, "--stats", "--format", "json"]);
        assert_eq!(code, EXIT_OK);
        let payload = Json::parse(out.trim()).expect("JSON");
        let stats = payload.get("stats").expect("stats member");
        for key in [
            "states_per_sec",
            "elapsed_ms",
            "peak_frontier",
            "interned",
            "interner_occupancy",
        ] {
            assert!(stats.get(key).is_some(), "missing {key} in {out}");
        }
        // without --stats the schema is unchanged
        let (code, out) = run_args(&["explore", &path, "--format", "json"]);
        assert_eq!(code, EXIT_OK);
        let payload = Json::parse(out.trim()).expect("JSON");
        assert!(payload.get("stats").is_none());
    }

    #[test]
    fn json_check_and_conformance_stats_append_throughput() {
        let path = write_temp("alt-check-stats.mcc", ALT);
        let (code, out) = run_args(&["check", &path, "--stats", "--format", "json"]);
        assert_eq!(code, EXIT_VIOLATED);
        let payload = Json::parse(out.trim()).expect("JSON");
        let stats = payload.get("stats").expect("stats member");
        assert!(stats.get("states_per_sec").is_some(), "{out}");
        assert!(stats.get("elapsed_ms").is_some(), "{out}");
        // without --stats the schema is unchanged
        let (_, out) = run_args(&["check", &path, "--format", "json"]);
        assert!(Json::parse(out.trim())
            .expect("JSON")
            .get("stats")
            .is_none());

        let trace = write_temp("good-stats.trace", "a\nb\n");
        let (code, out) = run_args(&["conformance", &path, &trace, "--stats", "--format", "json"]);
        assert_eq!(code, EXIT_OK, "{out}");
        let payload = Json::parse(out.trim()).expect("JSON");
        let stats = payload.get("stats").expect("stats member");
        assert!(stats.get("states_per_sec").is_some(), "{out}");
        assert!(stats.get("elapsed_ms").is_some(), "{out}");
    }

    #[test]
    fn trace_flag_writes_catapult_json_and_the_raw_stream() {
        let spec = write_temp("alt-trace.mcc", ALT);
        let trace_out = std::env::temp_dir().join("moccml-serve-cli-trace.json");
        let trace_path = trace_out.to_str().expect("utf8 path").to_owned();
        let (code, out) = run_args(&["check", &spec, "--trace", &trace_path]);
        assert_eq!(code, EXIT_VIOLATED, "{out}");
        // verdict output is byte-identical with tracing on
        let (_, plain) = run_args(&["check", &spec]);
        assert_eq!(out, plain, "tracing never perturbs the output");
        // the catapult file parses with our own JSON parser and names
        // the CLI phases
        let catapult = std::fs::read_to_string(&trace_path).expect("trace written");
        let parsed = Json::parse(catapult.trim()).expect("valid trace-event JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        for phase in ["parse", "compile", "check", "explore"] {
            assert!(names.contains(&phase), "missing {phase} in {names:?}");
        }
        // the raw stream is one JSON object per line
        let raw = std::fs::read_to_string(format!("{trace_path}.jsonl")).expect("jsonl written");
        assert!(!raw.is_empty());
        for line in raw.lines() {
            let event = Json::parse(line).expect("every raw line parses");
            assert!(event.get("type").is_some(), "{line}");
        }
        // --trace without a file path is a usage error
        let (code, out) = run_args(&["check", &spec, "--trace"]);
        assert_eq!(code, EXIT_ERROR);
        assert!(out.contains("--trace needs"), "{out}");
    }

    #[test]
    fn statistical_check_runs_in_both_formats() {
        let path = write_temp("alt-smc.mcc", ALT);
        let base = [
            "check",
            path.as_str(),
            "--statistical",
            "--epsilon",
            "0.1",
            "--seed",
            "7",
        ];
        let (code, out) = run_args(&base);
        assert_eq!(code, EXIT_VIOLATED, "{out}");
        assert!(out.contains("statistical check"), "{out}");
        assert!(out.contains("estimated"), "{out}");
        assert!(out.contains("witness (minimized, 2 steps): a ; b"), "{out}");

        let mut json_args = base.to_vec();
        json_args.extend(["--format", "json"]);
        let (jcode, jout) = run_args(&json_args);
        assert_eq!(jcode, EXIT_VIOLATED, "{jout}");
        let payload = Json::parse(jout.trim()).expect("one JSON line");
        assert_eq!(payload.get("kind").and_then(Json::as_str), Some("smc"));
        assert_eq!(payload.get("violated").and_then(Json::as_bool), Some(true));
        // the report is byte-identical for any worker count
        let mut two = json_args.clone();
        two.extend(["--workers", "2"]);
        let (_, two_out) = run_args(&two);
        assert_eq!(jout, two_out, "worker-count invariance");

        // SPRT mode decides both ways on this spec
        let mut sprt = base.to_vec();
        sprt.extend(["--prob-threshold", "0.5"]);
        let (code, out) = run_args(&sprt);
        assert_eq!(code, EXIT_VIOLATED, "{out}");
        assert!(out.contains("SPRT"), "{out}");
        assert!(out.contains("ABOVE"), "{out}");
        assert!(out.contains("below"), "{out}");

        // out-of-range knobs are usage errors, not panics
        let (code, out) = run_args(&["check", &path, "--statistical", "--epsilon", "2"]);
        assert_eq!(code, EXIT_ERROR);
        assert!(out.contains("epsilon"), "{out}");
    }

    #[test]
    fn text_format_delegates_unchanged() {
        let path = write_temp("alt3.mcc", ALT);
        let (plain_code, plain_out) = run_args(&["check", &path]);
        let (text_code, text_out) = run_args(&["check", &path, "--format", "text"]);
        assert_eq!(plain_code, text_code);
        assert_eq!(plain_out, text_out, "--format text is the default output");
        let (code, out) = run_args(&["check", &path, "--format", "yaml"]);
        assert_eq!(code, EXIT_ERROR);
        assert!(out.contains("--format expects"), "{out}");
    }

    #[test]
    fn help_advertises_the_service_and_delegation_still_works() {
        let (code, out) = run_args(&["--help"]);
        assert_eq!(code, EXIT_OK);
        assert!(out.contains("serve"), "{out}");
        assert!(out.contains("client"), "{out}");
        assert!(out.contains("lint"), "{out}");
        let path = write_temp("lint.mcc", ALT);
        let (code, out) = run_args(&["lint", &path]);
        assert_eq!(code, EXIT_OK, "{out}");
    }

    #[test]
    fn usage_errors_exit_two() {
        let (code, _) = run_args(&["client"]);
        assert_eq!(code, EXIT_ERROR);
        let (code, out) = run_args(&["client", "127.0.0.1:1", "/nonexistent.jsonl"]);
        assert_eq!(code, EXIT_ERROR);
        assert!(out.contains("cannot read"), "{out}");
        let (code, _) = run_args(&["check", "/nonexistent.mcc", "--format", "json"]);
        assert_eq!(code, EXIT_ERROR);
        let (code, out) = run_args(&["serve", "--listen"]);
        assert_eq!(code, EXIT_ERROR);
        assert!(out.contains("--listen needs a value"), "{out}");
    }
}
