//! The compiled-program cache: an LRU over [`Compiled`] specs keyed by
//! their *canonical pretty-printed form*.
//!
//! Compilation is the expensive, repeated part of a verification
//! service — clients hammer the same spec with different methods and
//! budgets. The cache key is [`SpecAst::to_text`](moccml_lang::SpecAst::to_text)
//! (the canonical printer of the frontend), not the raw source, so two
//! requests that differ only in formatting — whitespace, comments,
//! item order the printer normalizes — share one compiled entry. The
//! compiled [`Program`](moccml_engine::Program) sits behind an `Arc`
//! inside [`Compiled`], so handing out clones is cheap and jobs keep
//! their program alive even across an eviction.
//!
//! Eviction is least-recently-*used* (hits refresh recency) with a
//! monotonic stamp per entry; capacity 0 disables caching entirely but
//! still compiles.

use moccml_lang::{parse_spec, Compiled, LangError};
use std::collections::HashMap;

/// Aggregate cache counters, surfaced by the `status` method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently cached.
    pub entries: usize,
    /// Maximum entries kept.
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

struct Entry {
    compiled: Compiled,
    last_used: u64,
}

/// An LRU cache of compiled specifications, keyed by canonical form.
pub struct SpecCache {
    capacity: usize,
    entries: HashMap<String, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SpecCache {
    /// A cache holding at most `capacity` compiled specs.
    #[must_use]
    pub fn new(capacity: usize) -> SpecCache {
        SpecCache {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Parses `source`, canonicalizes it, and returns the cached
    /// compilation or compiles and caches it. The boolean is `true` on
    /// a cache hit.
    ///
    /// # Errors
    ///
    /// Returns the frontend's [`LangError`] when the source does not
    /// parse or compile; failures are never cached.
    pub fn get_or_compile(&mut self, source: &str) -> Result<(Compiled, bool), LangError> {
        let ast = parse_spec(source)?;
        let key = ast.to_text();
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.clock;
            self.hits += 1;
            return Ok((entry.compiled.clone(), true));
        }
        // compile from the canonical text so diagnostics and the cached
        // program are independent of the original formatting
        let compiled = moccml_lang::compile_str(&key)?;
        self.misses += 1;
        if self.capacity == 0 {
            return Ok((compiled, false));
        }
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(
            key,
            Entry {
                compiled: compiled.clone(),
                last_used: self.clock,
            },
        );
        Ok((compiled, false))
    }

    /// Evicts the least-recently-used entry (linear scan: capacities
    /// are small and eviction is off the hot path).
    fn evict_lru(&mut self) {
        let lru = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        if let Some(key) = lru {
            self.entries.remove(&key);
            self.evictions += 1;
        }
    }

    /// Whether `source` is currently cached, *without* touching
    /// recency or the hit/miss counters (for tests and introspection).
    ///
    /// # Errors
    ///
    /// Returns the parse error when `source` is not valid `.mcc`.
    pub fn peek(&self, source: &str) -> Result<bool, LangError> {
        let key = parse_spec(source)?.to_text();
        Ok(self.entries.contains_key(&key))
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> String {
        format!("spec {name} {{\n  events a, b;\n  constraint c = alternates(a, b);\n}}\n")
    }

    #[test]
    fn hits_share_the_compiled_program() {
        let mut cache = SpecCache::new(4);
        let (first, hit) = cache.get_or_compile(&spec("s")).expect("compiles");
        assert!(!hit);
        let (second, hit) = cache.get_or_compile(&spec("s")).expect("compiles");
        assert!(hit);
        // the Arc'd program is literally shared, not recompiled
        assert!(std::sync::Arc::ptr_eq(&first.program, &second.program));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn formatting_variants_hit_the_same_entry() {
        let mut cache = SpecCache::new(4);
        let canonical = spec("s");
        let noisy = "spec s{events a,b;\n\n  // a comment\n  constraint c=alternates( a , b );}";
        let (_, hit) = cache.get_or_compile(&canonical).expect("compiles");
        assert!(!hit);
        let (_, hit) = cache.get_or_compile(noisy).expect("compiles");
        assert!(hit, "reformatted spec shares the canonical key");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = SpecCache::new(2);
        cache.get_or_compile(&spec("s1")).expect("compiles");
        cache.get_or_compile(&spec("s2")).expect("compiles");
        // refresh s1 so s2 is the LRU victim
        cache.get_or_compile(&spec("s1")).expect("compiles");
        cache.get_or_compile(&spec("s3")).expect("compiles");
        assert!(cache.peek(&spec("s1")).expect("parses"));
        assert!(!cache.peek(&spec("s2")).expect("parses"));
        assert!(cache.peek(&spec("s3")).expect("parses"));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
    }

    #[test]
    fn zero_capacity_compiles_without_caching() {
        let mut cache = SpecCache::new(0);
        let (_, hit) = cache.get_or_compile(&spec("s")).expect("compiles");
        assert!(!hit);
        let (_, hit) = cache.get_or_compile(&spec("s")).expect("compiles");
        assert!(!hit);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.misses, stats.evictions), (0, 2, 0));
    }

    #[test]
    fn parse_failures_do_not_pollute_the_cache() {
        let mut cache = SpecCache::new(4);
        assert!(cache.get_or_compile("spec broken {").is_err());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (0, 0, 0));
    }
}
