//! The bundled scripted client: `moccml client <addr> <script.jsonl>`.
//!
//! The script is one request per line (blank lines and `#` comments
//! skipped). The client sends every request up front, prints each
//! received event as its own line, and exits when every sent request
//! has reached its terminal event (`result`, `error` or `cancelled`).
//! Exit codes follow the CLI convention: `0` all requests succeeded,
//! `1` at least one `error`/`cancelled` event, `2` I/O or usage
//! errors. CI drives the daemon with exactly this client.

use crate::json::Json;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// Runs a script against a serve daemon at `addr`, appending every
/// received event line to `out`.
///
/// # Errors
///
/// Returns a message on connection failures, unreadable scripts, or
/// script lines that are not JSON objects with an `id`.
pub fn run_script(addr: &str, script: &str, out: &mut String) -> Result<i32, String> {
    let mut pending: HashSet<String> = HashSet::new();
    let mut requests: Vec<String> = Vec::new();
    for (number, line) in script.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value = Json::parse(trimmed).map_err(|e| format!("script line {}: {e}", number + 1))?;
        let id = value
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("script line {}: request needs an `id`", number + 1))?;
        // `shutdown`/`cancel` answer on their own ids like any other
        // request, so tracking is uniform
        pending.insert(id.to_owned());
        requests.push(trimmed.to_owned());
    }
    if requests.is_empty() {
        return Err("script contains no requests".to_owned());
    }
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let mut writer = BufWriter::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone the connection: {e}"))?,
    );
    for request in &requests {
        writer
            .write_all(request.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("send failed: {e}"))?;
    }
    writer.flush().map_err(|e| format!("send failed: {e}"))?;
    let reader = BufReader::new(stream);
    let mut failed = false;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("receive failed: {e}"))?;
        let _ = writeln!(out, "{line}");
        let Ok(event) = Json::parse(&line) else {
            continue;
        };
        let kind = event.get("event").and_then(Json::as_str);
        if matches!(kind, Some("error" | "cancelled")) {
            failed = true;
        }
        if matches!(kind, Some("result" | "error" | "cancelled")) {
            if let Some(id) = event.get("id").and_then(Json::as_str) {
                pending.remove(id);
            }
        }
        if pending.is_empty() {
            break;
        }
    }
    if !pending.is_empty() {
        let mut missing: Vec<&str> = pending.iter().map(String::as_str).collect();
        missing.sort_unstable();
        return Err(format!(
            "connection closed with requests unanswered: {}",
            missing.join(", ")
        ));
    }
    Ok(i32::from(failed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::serve;
    use crate::service::ServiceConfig;

    const ALT: &str = "spec alt {\n  events a, b;\n  constraint alt = alternates(a, b);\n  assert never((a && b));\n}\n";

    fn boot() -> String {
        let (tx, rx) = std::sync::mpsc::channel();
        struct PipeOut(std::sync::mpsc::Sender<String>, Vec<u8>);
        impl std::io::Write for PipeOut {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.1.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                let _ = self.0.send(String::from_utf8_lossy(&self.1).to_string());
                Ok(())
            }
        }
        std::thread::spawn(move || {
            let mut out = PipeOut(tx, Vec::new());
            serve("127.0.0.1:0", ServiceConfig::default(), &mut out).expect("serves");
        });
        let banner = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("banner");
        banner
            .trim()
            .rsplit(' ')
            .next()
            .expect("address")
            .to_owned()
    }

    #[test]
    fn scripted_session_prints_events_and_exits_zero() {
        let addr = boot();
        let script = format!(
            "# a comment\n\n{}\n{}\n{}\n",
            Json::obj([
                ("id", Json::str("r1")),
                ("method", Json::str("check")),
                ("spec", Json::str(ALT)),
            ])
            .to_line(),
            r#"{"id":"s1","method":"status"}"#,
            r#"{"id":"bye","method":"shutdown"}"#,
        );
        let mut out = String::new();
        let code = run_script(&addr, &script, &mut out).expect("session runs");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains(r#""event":"accepted""#), "{out}");
        assert!(out.contains(r#""kind":"check""#), "{out}");
        assert!(out.contains(r#""kind":"status""#), "{out}");
        assert!(out.contains(r#""kind":"shutdown""#), "{out}");
    }

    #[test]
    fn failures_exit_one_and_bad_scripts_error() {
        let addr = boot();
        let script = format!(
            "{}\n{}\n",
            r#"{"id":"x","method":"check"}"#, // missing spec → error event
            r#"{"id":"bye","method":"shutdown"}"#,
        );
        let mut out = String::new();
        let code = run_script(&addr, &script, &mut out).expect("session runs");
        assert_eq!(code, 1, "{out}");
        assert!(run_script(&addr, "", &mut String::new()).is_err());
        assert!(run_script(&addr, "not json\n", &mut String::new()).is_err());
        assert!(run_script(
            "127.0.0.1:1",
            "{\"id\":\"a\",\"method\":\"status\"}\n",
            &mut String::new()
        )
        .is_err());
    }
}
