//! # moccml-serve
//!
//! The long-running verification service of the MoCCML reproduction:
//! a zero-dependency daemon that keeps compiled specifications hot and
//! answers verification requests over a newline-delimited JSON
//! protocol.
//!
//! The paper positions MoCCML as the semantic backbone of a modeling
//! *workbench* (GEMOC): editors and analysis views fire many small
//! verification queries against the same handful of specifications.
//! That workload is exactly what this crate serves:
//!
//! * **Protocol** ([`protocol`]) — one request per line
//!   (`check` / `explore` / `simulate` / `conformance` / `lint` /
//!   `status` / `cancel` / `shutdown`), answered by a stream of
//!   events: `accepted`, periodic `progress` checkpoints (riding the
//!   explorer's [`ExploreVisitor::on_progress`](moccml_engine::ExploreVisitor::on_progress)
//!   hook), and exactly one terminal `result` / `error` / `cancelled`.
//! * **Compiled-program cache** ([`cache`]) — an LRU keyed by the
//!   frontend's *canonical pretty-printed form*
//!   ([`SpecAst::to_text`](moccml_lang::SpecAst)), so reformatted but
//!   equivalent specs share one compiled
//!   [`Program`](moccml_engine::Program) behind an `Arc`.
//! * **Bounded job queue** ([`service`]) — a fixed worker pool behind
//!   a depth-bounded queue (`queue full` rejections instead of
//!   unbounded memory), per-request state/depth/worker budgets clamped
//!   to service caps, wall-clock deadlines, and cooperative
//!   cancellation through
//!   [`VisitControl::Stop`](moccml_engine::VisitControl) — a cancelled
//!   exploration stops at the next checkpoint and the worker lives on.
//! * **Metrics** ([`metrics`]) — per-method log₂ latency histograms
//!   (the shared [`moccml_obs::Histogram`]) and cache/queue counters
//!   behind the `status` method, plus a `metrics` method rendering the
//!   combined explorer/cache/latency view as Prometheus-style text
//!   exposition. Result envelopes carry per-job span summaries, and
//!   `--trace <file>` on the CLI writes Chrome trace-event JSON.
//! * **One result schema** ([`ops`]) — the JSON verdict objects are
//!   shared between serve's `result` events and the CLI's
//!   `--format json` mode, and derived from the same values the text
//!   CLI prints, so the two never drift.
//!
//! The `moccml` binary lives in this crate (top of the dependency
//! stack): [`cli::run`] resolves `serve`, `client` and the JSON format
//! mode, and delegates everything else to the analyzer/frontend CLIs.
//!
//! ## Worked example: an in-process session
//!
//! ```
//! use moccml_serve::service::{Service, ServiceConfig};
//! use moccml_serve::json::Json;
//!
//! let service = Service::new(ServiceConfig::default());
//! let spec = "spec alt {\n  events a, b;\n  constraint alt = alternates(a, b);\n  assert never((a && b));\n}\n";
//! let request = Json::obj([
//!     ("id", Json::str("r1")),
//!     ("method", Json::str("check")),
//!     ("spec", Json::str(spec)),
//! ]);
//! let events = service.call(&request.to_line());
//! let result = events.last().expect("terminal event");
//! assert_eq!(result.get("event").and_then(Json::as_str), Some("result"));
//! let payload = result.get("result").expect("payload");
//! assert_eq!(payload.get("violated").and_then(Json::as_bool), Some(false));
//!
//! // the same spec again — answered from the compiled-program cache
//! let events = service.call(&Json::obj([
//!     ("id", Json::str("r2")),
//!     ("method", Json::str("status")),
//! ]).to_line());
//! let status = events.last().expect("status").get("result").cloned().expect("payload");
//! let hits = status.get("cache").and_then(|c| c.get("misses")).and_then(Json::as_i64);
//! assert_eq!(hits, Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod client;
pub mod json;
pub mod metrics;
pub mod ops;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{CacheStats, SpecCache};
pub use json::{Json, JsonError};
pub use protocol::{Method, Request, RequestOptions};
pub use service::{CollectingSink, Dispatch, EventSink, Service, ServiceConfig};
