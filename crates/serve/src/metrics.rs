//! Service metrics: the shared log₂ latency [`Histogram`] keyed by
//! method, and the Prometheus-style text exposition the `metrics`
//! protocol method returns.
//!
//! The histogram type itself lives in [`moccml_obs`] (it moved there
//! so the daemon, the explorer benches and the CLI share one bucketing
//! scheme); this module re-exports it — same power-of-two microsecond
//! buckets, same cumulative quantile walk — so the `status` payload is
//! byte-compatible with the pre-move output.

pub use moccml_obs::Histogram;

use crate::cache::CacheStats;
use crate::protocol::Method;
use moccml_obs::{Exposition, Snapshot};

/// Per-worker explorer counters rolled up across workers and jobs:
/// `(snapshot prefix, metric name, help)`.
const EXPLORER_COUNTERS: &[(&str, &str, &str)] = &[
    (
        "explore_expansions_w",
        "moccml_explore_expansions_total",
        "States expanded by the explorer, summed over workers and jobs.",
    ),
    (
        "explore_batches_w",
        "moccml_explore_batches_total",
        "Work batches taken from the explorer deques.",
    ),
    (
        "explore_batch_states_w",
        "moccml_explore_batch_states_total",
        "States carried by those batches.",
    ),
    (
        "explore_steal_attempts_w",
        "moccml_explore_steal_attempts_total",
        "Neighbour-scan rounds entered with an empty own deque.",
    ),
    (
        "explore_steal_hits_w",
        "moccml_explore_steal_hits_total",
        "Steal attempts that found work.",
    ),
    (
        "cursor_memo_hits",
        "moccml_cursor_memo_hits_total",
        "Cursor L1 formula-memo hits.",
    ),
    (
        "cursor_memo_misses",
        "moccml_cursor_memo_misses_total",
        "Cursor L1 formula-memo misses (shared memo consulted).",
    ),
];

/// Peak-valued explorer gauges: `(snapshot name, metric name, help)`.
const EXPLORER_GAUGES: &[(&str, &str, &str)] = &[
    (
        "explore_states",
        "moccml_explore_states_peak",
        "Largest state count any single job explored.",
    ),
    (
        "explore_transitions",
        "moccml_explore_transitions_peak",
        "Largest transition count any single job explored.",
    ),
    (
        "explore_replay_cache_peak",
        "moccml_explore_replay_cache_peak",
        "Peak replay-cache depth across jobs.",
    ),
    (
        "explore_interner_keys",
        "moccml_explore_interner_keys_peak",
        "Peak interned fingerprint count across jobs.",
    ),
    (
        "explore_workers",
        "moccml_explore_workers_peak",
        "Largest worker count any job explored with.",
    ),
];

/// Renders the combined explorer/cache/queue/latency view as one
/// Prometheus text exposition (format 0.0.4). `methods` are the
/// completed-job latency histograms in a fixed order; `explorer` is
/// the service-wide roll-up of every job's explorer counters.
#[must_use]
pub fn exposition(
    uptime_ms: u64,
    cache: &CacheStats,
    queued: usize,
    in_flight: usize,
    methods: &[(Method, Histogram)],
    explorer: &Snapshot,
) -> String {
    let mut exp = Exposition::new();
    #[allow(clippy::cast_precision_loss)]
    exp.gauge(
        "moccml_uptime_ms",
        "Milliseconds since the service started.",
        &[],
        uptime_ms as f64,
    );
    exp.counter(
        "moccml_cache_hits_total",
        "Compiled-spec cache hits.",
        &[],
        cache.hits,
    );
    exp.counter(
        "moccml_cache_misses_total",
        "Compiled-spec cache misses (compilations).",
        &[],
        cache.misses,
    );
    exp.counter(
        "moccml_cache_evictions_total",
        "Compiled specs evicted from the LRU cache.",
        &[],
        cache.evictions,
    );
    #[allow(clippy::cast_precision_loss)]
    {
        exp.gauge(
            "moccml_cache_entries",
            "Compiled specs currently cached.",
            &[],
            cache.entries as f64,
        );
        exp.gauge(
            "moccml_queue_depth",
            "Jobs queued but not yet running.",
            &[],
            queued as f64,
        );
        exp.gauge(
            "moccml_jobs_in_flight",
            "Jobs currently running on the worker pool.",
            &[],
            in_flight as f64,
        );
    }
    for (method, h) in methods {
        let label = [("method", method.name())];
        exp.counter(
            "moccml_requests_total",
            "Completed jobs per method.",
            &label,
            h.count(),
        );
        exp.histogram(
            "moccml_request_duration_us",
            "Job wall-clock latency in microseconds.",
            &label,
            h,
        );
    }
    for (prefix, name, help) in EXPLORER_COUNTERS {
        exp.counter(name, help, &[], explorer.counter_sum(prefix));
    }
    #[allow(clippy::cast_precision_loss)]
    for (gauge, name, help) in EXPLORER_GAUGES {
        exp.gauge(name, help, &[], explorer.gauge(gauge).unwrap_or(0) as f64);
    }
    exp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn status_compatible_histogram_surface() {
        // the re-exported type answers exactly what status_json reads
        let mut h = Histogram::default();
        for us in [100u64, 100, 50_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean_us(), (100 + 100 + 50_000) / 3);
        assert!(h.quantile_us(0.5) < h.quantile_us(1.0));
        assert_eq!(h.max_us(), 50_000);
    }

    #[test]
    fn exposition_covers_every_section_and_validates() {
        let cache = CacheStats {
            entries: 2,
            capacity: 32,
            hits: 5,
            misses: 3,
            evictions: 1,
        };
        let mut h = Histogram::default();
        h.record(Duration::from_micros(250));
        let obs = moccml_obs::Recorder::new();
        obs.counter("explore_expansions_w0").add(40);
        obs.counter("explore_expansions_w1").add(60);
        obs.gauge("explore_states").raise(100);
        let text = exposition(1234, &cache, 1, 2, &[(Method::Check, h)], &obs.snapshot());
        moccml_obs::expose::validate(&text).expect("well-formed exposition");
        assert!(text.contains("moccml_cache_hits_total 5"), "{text}");
        assert!(text.contains("moccml_queue_depth 1"), "{text}");
        assert!(text.contains("moccml_jobs_in_flight 2"), "{text}");
        assert!(
            text.contains("moccml_requests_total{method=\"check\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("moccml_request_duration_us_count{method=\"check\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("moccml_explore_expansions_total 100"),
            "workers roll up: {text}"
        );
        assert!(text.contains("moccml_explore_states_peak 100"), "{text}");
    }
}
