//! The TCP front end: newline-delimited JSON over a plain socket.
//!
//! One reader thread per connection feeds request lines to the shared
//! [`Service`]; response events — which may originate on worker
//! threads — are serialized back through a per-connection writer lock,
//! one event per line. The first thing the daemon prints on stdout is
//!
//! ```text
//! moccml-serve listening on 127.0.0.1:7315
//! ```
//!
//! flushed immediately, so scripts can bind port `0` and scrape the
//! actual address. A `shutdown` request stops intake, drains in-flight
//! jobs, answers with the final `result` event and exits the accept
//! loop.

use crate::json::Json;
use crate::protocol;
use crate::service::{Dispatch, EventSink, Service, ServiceConfig};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The default listen address of `moccml serve`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7315";

/// An [`EventSink`] writing one event per line to a TCP stream. Write
/// failures (client hung up mid-job) latch the sink shut instead of
/// failing the job.
struct LineSink {
    writer: Mutex<BufWriter<TcpStream>>,
    broken: AtomicBool,
}

impl LineSink {
    fn new(stream: TcpStream) -> LineSink {
        LineSink {
            writer: Mutex::new(BufWriter::new(stream)),
            broken: AtomicBool::new(false),
        }
    }
}

impl EventSink for LineSink {
    fn emit(&self, event: &Json) {
        if self.broken.load(Ordering::Relaxed) {
            return;
        }
        let mut writer = self.writer.lock().expect("writer lock");
        let line = event.to_line();
        if writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            self.broken.store(true, Ordering::Relaxed);
        }
    }
}

/// Runs the daemon: binds `addr`, prints and flushes the
/// `listening on` line to `out`, then serves connections until a
/// `shutdown` request arrives.
///
/// # Errors
///
/// Returns a message when the address cannot be bound.
pub fn serve(addr: &str, config: ServiceConfig, out: &mut dyn Write) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve the bound address: {e}"))?;
    let _ = writeln!(out, "moccml-serve listening on {local}");
    let _ = out.flush();
    let service = Arc::new(Service::new(config));
    let shutting_down = Arc::new(AtomicBool::new(false));
    for stream in listener.incoming() {
        if shutting_down.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(&service);
        let shutting_down = Arc::clone(&shutting_down);
        // detached: the shutdown handler drains in-flight jobs before
        // its `result` goes out, so exiting must not wait for idle
        // clients that never hang up
        std::thread::Builder::new()
            .name("moccml-serve-conn".to_owned())
            .spawn(move || handle_connection(stream, &service, &shutting_down, local))
            .expect("connection thread spawns");
    }
    service.shutdown();
    Ok(())
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<Service>,
    shutting_down: &Arc<AtomicBool>,
    local: std::net::SocketAddr,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let sink: Arc<dyn EventSink> = Arc::new(LineSink::new(write_half));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match service.handle_line(&line, &sink) {
            Dispatch::Continue => {}
            Dispatch::Shutdown { id } => {
                shutting_down.store(true, Ordering::Relaxed);
                service.shutdown();
                sink.emit(&protocol::result(
                    &id,
                    Json::obj([("kind", Json::str("shutdown"))]),
                ));
                // the accept loop blocks in `incoming()`: poke it with
                // a throwaway connection so it observes the flag
                let _ = TcpStream::connect(local);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALT: &str = "spec alt {\n  events a, b;\n  constraint alt = alternates(a, b);\n  assert never((a && b));\n}\n";

    /// Boots a daemon on an ephemeral port, returns its address and
    /// the thread handle.
    fn boot() -> (String, std::thread::JoinHandle<()>) {
        struct PipeOut {
            tx: std::sync::mpsc::Sender<String>,
            buffer: Vec<u8>,
        }
        impl Write for PipeOut {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.buffer.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                let text = String::from_utf8_lossy(&self.buffer).to_string();
                let _ = self.tx.send(text);
                Ok(())
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let mut out = PipeOut {
                tx,
                buffer: Vec::new(),
            };
            serve("127.0.0.1:0", ServiceConfig::default(), &mut out).expect("serves");
        });
        let banner = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("banner");
        let addr = banner
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in banner")
            .to_owned();
        (addr, handle)
    }

    fn send_lines(addr: &str, lines: &[String]) -> Vec<Json> {
        let stream = TcpStream::connect(addr).expect("connects");
        let mut writer = BufWriter::new(stream.try_clone().expect("clones"));
        for line in lines {
            writer.write_all(line.as_bytes()).expect("writes");
            writer.write_all(b"\n").expect("writes");
        }
        writer.flush().expect("flushes");
        drop(writer);
        let reader = BufReader::new(stream);
        let mut events = Vec::new();
        let mut pending: std::collections::HashSet<String> = lines
            .iter()
            .filter_map(|l| Json::parse(l).ok())
            .filter_map(|v| v.get("id").and_then(Json::as_str).map(str::to_owned))
            .collect();
        for line in reader.lines() {
            let line = line.expect("reads");
            let event = Json::parse(&line).expect("events are JSON");
            if matches!(
                event.get("event").and_then(Json::as_str),
                Some("result" | "error" | "cancelled")
            ) {
                if let Some(id) = event.get("id").and_then(Json::as_str) {
                    pending.remove(id);
                }
            }
            events.push(event);
            if pending.is_empty() {
                break;
            }
        }
        events
    }

    #[test]
    fn tcp_round_trip_check_status_shutdown() {
        let (addr, handle) = boot();
        let check = Json::obj([
            ("id", Json::str("r1")),
            ("method", Json::str("check")),
            ("spec", Json::str(ALT)),
        ])
        .to_line();
        let events = send_lines(&addr, &[check]);
        let result = events
            .iter()
            .find(|e| e.get("event").and_then(Json::as_str) == Some("result"))
            .expect("result");
        assert_eq!(
            result
                .get("result")
                .and_then(|r| r.get("violated"))
                .and_then(Json::as_bool),
            Some(false)
        );
        // second connection: cache hit shows up in status
        let status = send_lines(&addr, &[r#"{"id":"s1","method":"status"}"#.to_owned()]);
        let payload = status
            .iter()
            .find(|e| e.get("event").and_then(Json::as_str) == Some("result"))
            .and_then(|e| e.get("result"))
            .cloned()
            .expect("status payload");
        assert_eq!(
            payload
                .get("cache")
                .and_then(|c| c.get("misses"))
                .and_then(Json::as_i64),
            Some(1)
        );
        let bye = send_lines(&addr, &[r#"{"id":"bye","method":"shutdown"}"#.to_owned()]);
        assert!(bye
            .iter()
            .any(|e| e.get("event").and_then(Json::as_str) == Some("result")));
        handle.join().expect("accept loop exits");
    }
}
