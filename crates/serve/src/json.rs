//! Hand-rolled, zero-dependency JSON: an ordered value tree, a strict
//! parser and a compact single-line writer.
//!
//! The serve protocol is newline-delimited JSON over TCP, so every
//! encoded value must fit one line — [`Json::to_line`] never emits a
//! raw newline (control characters are escaped). Object members keep
//! their insertion order, which is what makes the machine-readable CLI
//! output (`--format json`) byte-stable and golden-testable.
//!
//! The same module backs both sides of the wire: the daemon encodes
//! events with it, the bundled client and the test suites decode them
//! with it, and the CLI satellite reuses the result-object builders in
//! [`crate::ops`] on top of it.

use std::fmt;

/// A JSON value. Objects preserve member insertion order (a `Vec` of
/// pairs, not a map) so encodings are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is a mathematical integer in `i64` range.
    Int(i64),
    /// Any other finite number. Non-finite floats encode as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(members: I) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_owned())
    }

    /// Builds a number from a `usize` (values beyond `i64` saturate).
    #[must_use]
    pub fn int(n: usize) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }

    /// Builds a number from a `u128`: an [`Json::Int`] when it fits
    /// `i64`, otherwise the decimal digits as a string (schedule
    /// counts saturate at `u128::MAX`, far past any JSON number).
    #[must_use]
    pub fn u128(n: u128) -> Json {
        match i64::try_from(n) {
            Ok(v) => Json::Int(v),
            Err(_) => Json::Str(n.to_string()),
        }
    }

    /// Member `key` of an object, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a float: floats directly, integers
    /// widened (statistical knobs like `epsilon` accept both `0.05`
    /// and a bare `1`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes the value compactly on a single line (no raw newlines:
    /// control characters are escaped).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) if v.is_finite() => out.push_str(&format_float(*v)),
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `input`, requiring nothing but
    /// whitespace after it.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset of the first
    /// offending character.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

/// Formats a finite float so that it round-trips as a JSON number
/// (always with a fractional part or exponent, never `NaN`).
fn format_float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Writes `s` as a JSON string literal, quotes included.
fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // combine a UTF-16 surrogate pair when the
                            // next escape supplies the low half
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(unit))
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // consume one full UTF-8 scalar (input is &str, so
                    // boundaries are valid by construction)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            fractional = true;
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_compact_single_line() {
        let value = Json::obj([
            ("id", Json::str("r1")),
            ("n", Json::Int(42)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Null])),
            ("f", Json::Float(1.5)),
        ]);
        assert_eq!(
            value.to_line(),
            r#"{"id":"r1","n":42,"ok":true,"xs":[1,null],"f":1.5}"#
        );
        assert!(!value.to_line().contains('\n'));
    }

    #[test]
    fn escapes_keep_everything_on_one_line() {
        let value = Json::obj([("s", Json::str("a\nb\t\"c\"\\d\u{1}"))]);
        let line = value.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Json::parse(&line).expect("round-trips"), value);
    }

    #[test]
    fn parse_round_trips_nested_values() {
        for text in [
            "null",
            "true",
            "-17",
            "3.25",
            r#""héllo \u00e9 \ud83d\ude00""#,
            r#"[1,[2,{"k":"v"}],null]"#,
            r#"{"a":{"b":[false]},"c":""}"#,
        ] {
            let parsed = Json::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let reparsed = Json::parse(&parsed.to_line()).expect("re-parses");
            assert_eq!(parsed, reparsed, "{text}");
        }
    }

    #[test]
    fn integers_and_floats_are_distinguished() {
        assert_eq!(Json::parse("7"), Ok(Json::Int(7)));
        assert_eq!(Json::parse("7.0"), Ok(Json::Float(7.0)));
        assert_eq!(Json::parse("1e2"), Ok(Json::Float(100.0)));
        // i64 overflow falls back to float
        assert!(matches!(
            Json::parse("99999999999999999999"),
            Ok(Json::Float(_))
        ));
        // floats always re-encode with a fractional marker
        assert_eq!(Json::Float(7.0).to_line(), "7.0");
    }

    #[test]
    fn u128_saturation_uses_strings_past_i64() {
        assert_eq!(Json::u128(5), Json::Int(5));
        assert_eq!(Json::u128(u128::MAX), Json::Str(u128::MAX.to_string()));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("{\"a\": }").expect_err("bad value");
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("18 trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors_select_members() {
        let value =
            Json::parse(r#"{"id":"r1","n":3,"ok":false,"xs":[1],"f":2.5}"#).expect("parses");
        assert_eq!(value.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(value.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(value.get("f").and_then(Json::as_f64), Some(2.5));
        // integers widen through the float accessor, strings do not
        assert_eq!(value.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(value.get("id").and_then(Json::as_f64), None);
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            value.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(value.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
