//! The serve wire protocol: request decoding and event encoding.
//!
//! One request per line, one event per line, both JSON objects. A
//! request names a `method` and carries the full `.mcc` `spec` text
//! inline (plus method-specific options); the daemon answers with a
//! stream of events correlated by the request's `id`:
//!
//! ```text
//! → {"id":"r1","method":"check","spec":"spec s { … }"}
//! ← {"event":"accepted","id":"r1","method":"check"}
//! ← {"event":"progress","id":"r1","states":2048,"transitions":4096,"depth":11}
//! ← {"event":"result","id":"r1","result":{"kind":"check", … }}
//! ```
//!
//! Every request terminates with exactly one `result`, `error` or
//! `cancelled` event; `progress` events are best-effort and only
//! emitted for long-running jobs. The `result` payloads are the shared
//! machine-readable objects of [`crate::ops`] — byte-identical to what
//! `moccml <cmd> --format json` prints.

use crate::json::Json;

/// A protocol method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Verify every `assert`ed property of the spec.
    Check,
    /// Build the state-space and report its metrics.
    Explore,
    /// Run a policy-driven simulation.
    Simulate,
    /// Replay a recorded trace against the spec.
    Conformance,
    /// Statistical model checking: Monte-Carlo trace sampling with
    /// Okamoto/SPRT bounds instead of exhaustive exploration.
    Smc,
    /// Static analysis of the spec.
    Lint,
    /// Service health: uptime, cache and queue counters, latencies.
    Status,
    /// Prometheus-style text exposition of the service's combined
    /// explorer/cache/queue/latency metrics.
    Metrics,
    /// Cooperatively cancel an in-flight request by id.
    Cancel,
    /// Drain in-flight jobs and stop the daemon.
    Shutdown,
}

impl Method {
    /// The wire name of the method.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Method::Check => "check",
            Method::Explore => "explore",
            Method::Simulate => "simulate",
            Method::Conformance => "conformance",
            Method::Smc => "smc",
            Method::Lint => "lint",
            Method::Status => "status",
            Method::Metrics => "metrics",
            Method::Cancel => "cancel",
            Method::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Method> {
        Some(match name {
            "check" => Method::Check,
            "explore" => Method::Explore,
            "simulate" => Method::Simulate,
            "conformance" => Method::Conformance,
            "smc" => Method::Smc,
            "lint" => Method::Lint,
            "status" => Method::Status,
            "metrics" => Method::Metrics,
            "cancel" => Method::Cancel,
            "shutdown" => Method::Shutdown,
            _ => return None,
        })
    }

    /// Whether the method runs on the worker pool (as opposed to being
    /// answered synchronously at dispatch).
    #[must_use]
    pub fn is_job(self) -> bool {
        !matches!(
            self,
            Method::Status | Method::Metrics | Method::Cancel | Method::Shutdown
        )
    }
}

/// Per-request knobs, all optional on the wire and clamped to the
/// service budgets before use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestOptions {
    /// Worker threads for this job's exploration.
    pub workers: Option<usize>,
    /// Exploration state bound.
    pub max_states: Option<usize>,
    /// Exploration depth bound.
    pub max_depth: Option<usize>,
    /// Wall-clock budget for the job, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Simulation steps.
    pub steps: Option<usize>,
    /// Simulation policy name.
    pub policy: Option<String>,
    /// Simulation seed (random policy); also the `smc` base seed.
    pub seed: Option<u64>,
    /// Lint: treat warnings as errors.
    pub deny_warnings: bool,
    /// `smc`: estimation half-width ε.
    pub epsilon: Option<f64>,
    /// `smc`: error bound δ (confidence is `1 - δ`).
    pub delta: Option<f64>,
    /// `smc`: run the sequential SPRT against this violation
    /// probability threshold instead of a fixed-size estimate.
    pub prob_threshold: Option<f64>,
    /// `smc`: per-trace length cap.
    pub max_trace_len: Option<usize>,
}

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on every event.
    pub id: String,
    /// What to do.
    pub method: Method,
    /// The `.mcc` specification text (jobs other than `conformance`
    /// without a spec are rejected at dispatch).
    pub spec: Option<String>,
    /// `conformance`: the recorded trace, `Schedule::parse_lines`
    /// format (literal newlines, so JSON-escaped on the wire).
    pub trace: Option<String>,
    /// `cancel`: the id of the request to cancel.
    pub target: Option<String>,
    /// Budget and policy knobs.
    pub options: RequestOptions,
}

impl Request {
    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the line is not valid
    /// JSON, is missing `id`/`method`, or names an unknown method.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let id = value
            .get("id")
            .and_then(Json::as_str)
            .ok_or("request needs a string `id`")?
            .to_owned();
        let method_name = value
            .get("method")
            .and_then(Json::as_str)
            .ok_or("request needs a string `method`")?;
        let method =
            Method::parse(method_name).ok_or_else(|| format!("unknown method `{method_name}`"))?;
        let str_field = |key: &str| value.get(key).and_then(Json::as_str).map(str::to_owned);
        let usize_field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_i64)
                .and_then(|v| usize::try_from(v).ok())
        };
        let options = RequestOptions {
            workers: usize_field("workers"),
            max_states: usize_field("max_states"),
            max_depth: usize_field("max_depth"),
            timeout_ms: value
                .get("timeout_ms")
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok()),
            steps: usize_field("steps"),
            policy: str_field("policy"),
            seed: value
                .get("seed")
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok()),
            deny_warnings: value
                .get("deny_warnings")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            epsilon: value.get("epsilon").and_then(Json::as_f64),
            delta: value.get("delta").and_then(Json::as_f64),
            prob_threshold: value.get("prob_threshold").and_then(Json::as_f64),
            max_trace_len: usize_field("max_trace_len"),
        };
        Ok(Request {
            id,
            method,
            spec: str_field("spec"),
            trace: str_field("trace"),
            target: str_field("target"),
            options,
        })
    }
}

/// `accepted`: the request was decoded and queued (or is being
/// answered synchronously).
#[must_use]
pub fn accepted(id: &str, method: Method) -> Json {
    Json::obj([
        ("event", Json::str("accepted")),
        ("id", Json::str(id)),
        ("method", Json::str(method.name())),
    ])
}

/// `progress`: a long-running job's periodic checkpoint.
#[must_use]
pub fn progress(id: &str, states: usize, transitions: usize, depth: usize) -> Json {
    Json::obj([
        ("event", Json::str("progress")),
        ("id", Json::str(id)),
        ("states", Json::int(states)),
        ("transitions", Json::int(transitions)),
        ("depth", Json::int(depth)),
    ])
}

/// [`progress`] extended with throughput counters from a live
/// [`ExploreMonitor`](moccml_engine::ExploreMonitor) reading: the same
/// numbers `moccml explore --stats` prints. The counters are
/// best-effort (timing-dependent); the `states`/`transitions`/`depth`
/// triple stays the canonical, deterministic one.
#[must_use]
pub fn progress_with(
    id: &str,
    states: usize,
    transitions: usize,
    depth: usize,
    metrics: &moccml_engine::ExploreMetrics,
) -> Json {
    Json::obj([
        ("event", Json::str("progress")),
        ("id", Json::str(id)),
        ("states", Json::int(states)),
        ("transitions", Json::int(transitions)),
        ("depth", Json::int(depth)),
        ("states_per_sec", Json::Float(metrics.states_per_sec())),
        ("pending", Json::int(metrics.pending)),
        ("peak_frontier", Json::int(metrics.peak_frontier)),
        ("interned", Json::int(metrics.interned)),
        (
            "interner_occupancy",
            Json::Float(metrics.interner_occupancy()),
        ),
    ])
}

/// `progress` for a statistical (`smc`) job: consumed traces and
/// violations so far against the planned Okamoto budget (sequential
/// runs usually stop long before `planned`).
#[must_use]
pub fn smc_progress(id: &str, traces: usize, violations: usize, planned: usize) -> Json {
    Json::obj([
        ("event", Json::str("progress")),
        ("id", Json::str(id)),
        ("traces", Json::int(traces)),
        ("violations", Json::int(violations)),
        ("planned", Json::int(planned)),
    ])
}

/// `result`: the job finished; `result` is an [`crate::ops`] object.
#[must_use]
pub fn result(id: &str, payload: Json) -> Json {
    Json::obj([
        ("event", Json::str("result")),
        ("id", Json::str(id)),
        ("result", payload),
    ])
}

/// Attaches a per-job span summary to a terminal event envelope —
/// aggregated by span name in first-opened order, as a **sibling** of
/// the `result` payload so byte-comparisons against the payload (CI
/// greps the `--format json` line inside session transcripts) keep
/// matching. No-op when `spans` is empty.
#[must_use]
pub fn with_spans(event: Json, spans: &[moccml_obs::SpanRecord]) -> Json {
    if spans.is_empty() {
        return event;
    }
    let mut order: Vec<&str> = Vec::new();
    let mut totals: Vec<(u64, u64)> = Vec::new(); // (count, total_us)
    for span in spans {
        let at = match order.iter().position(|n| *n == span.name) {
            Some(at) => at,
            None => {
                order.push(&span.name);
                totals.push((0, 0));
                order.len() - 1
            }
        };
        totals[at].0 += 1;
        totals[at].1 += span.dur_us;
    }
    let summary = order
        .iter()
        .zip(&totals)
        .map(|(name, (count, total_us))| {
            Json::obj([
                ("name", Json::str(name)),
                (
                    "count",
                    Json::Int(i64::try_from(*count).unwrap_or(i64::MAX)),
                ),
                (
                    "total_us",
                    Json::Int(i64::try_from(*total_us).unwrap_or(i64::MAX)),
                ),
            ])
        })
        .collect();
    match event {
        Json::Obj(mut members) => {
            members.push(("spans".to_owned(), Json::Arr(summary)));
            Json::Obj(members)
        }
        other => other,
    }
}

/// `error`: the request failed (bad input, budget exhausted, rejected).
#[must_use]
pub fn error(id: &str, message: &str) -> Json {
    Json::obj([
        ("event", Json::str("error")),
        ("id", Json::str(id)),
        ("error", Json::str(message)),
    ])
}

/// `cancelled`: the job was stopped by a `cancel` request before it
/// produced a verdict. No partial result is reported.
#[must_use]
pub fn cancelled(id: &str) -> Json {
    Json::obj([("event", Json::str("cancelled")), ("id", Json::str(id))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_decode_with_all_options() {
        let line = r#"{"id":"r7","method":"check","spec":"spec s {}","workers":2,
                       "max_states":500,"max_depth":9,"timeout_ms":250,"steps":4,
                       "policy":"random","seed":7,"deny_warnings":true,
                       "epsilon":0.05,"delta":0.01,"prob_threshold":0.5,
                       "max_trace_len":128}"#
            .replace('\n', " ");
        let req = Request::parse(&line).expect("decodes");
        assert_eq!(req.id, "r7");
        assert_eq!(req.method, Method::Check);
        assert_eq!(req.spec.as_deref(), Some("spec s {}"));
        assert_eq!(req.options.workers, Some(2));
        assert_eq!(req.options.max_states, Some(500));
        assert_eq!(req.options.max_depth, Some(9));
        assert_eq!(req.options.timeout_ms, Some(250));
        assert_eq!(req.options.steps, Some(4));
        assert_eq!(req.options.policy.as_deref(), Some("random"));
        assert_eq!(req.options.seed, Some(7));
        assert!(req.options.deny_warnings);
        assert_eq!(req.options.epsilon, Some(0.05));
        assert_eq!(req.options.delta, Some(0.01));
        assert_eq!(req.options.prob_threshold, Some(0.5));
        assert_eq!(req.options.max_trace_len, Some(128));
    }

    #[test]
    fn requests_reject_malformed_lines() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"method":"check"}"#).is_err());
        assert!(Request::parse(r#"{"id":"x"}"#).is_err());
        let err = Request::parse(r#"{"id":"x","method":"frobnicate"}"#).expect_err("unknown");
        assert!(err.contains("frobnicate"), "{err}");
    }

    #[test]
    fn method_names_round_trip() {
        for m in [
            Method::Check,
            Method::Explore,
            Method::Simulate,
            Method::Conformance,
            Method::Smc,
            Method::Lint,
            Method::Status,
            Method::Metrics,
            Method::Cancel,
            Method::Shutdown,
        ] {
            assert_eq!(Method::parse(m.name()), Some(m));
        }
        assert!(Method::Check.is_job());
        assert!(Method::Smc.is_job());
        assert!(!Method::Status.is_job());
        assert!(!Method::Metrics.is_job());
        assert!(!Method::Cancel.is_job());
        assert!(!Method::Shutdown.is_job());
    }

    #[test]
    fn events_carry_the_request_id() {
        assert_eq!(
            accepted("r1", Method::Explore).to_line(),
            r#"{"event":"accepted","id":"r1","method":"explore"}"#
        );
        assert_eq!(
            progress("r1", 10, 20, 3).to_line(),
            r#"{"event":"progress","id":"r1","states":10,"transitions":20,"depth":3}"#
        );
        assert_eq!(
            smc_progress("r1", 512, 3, 18_445).to_line(),
            r#"{"event":"progress","id":"r1","traces":512,"violations":3,"planned":18445}"#
        );
        assert_eq!(
            cancelled("r1").to_line(),
            r#"{"event":"cancelled","id":"r1"}"#
        );
        let e = error("r1", "queue full");
        assert_eq!(e.get("error").and_then(Json::as_str), Some("queue full"));
        let r = result("r1", Json::obj([("kind", Json::str("check"))]));
        assert_eq!(
            r.get("result")
                .and_then(|v| v.get("kind"))
                .and_then(Json::as_str),
            Some("check")
        );
    }

    #[test]
    fn with_spans_summarizes_as_an_envelope_sibling() {
        let rec = moccml_obs::Recorder::new();
        {
            let _check = rec.span("check");
            drop(rec.span("explore"));
        }
        drop(rec.span("explore"));
        let payload = Json::obj([("kind", Json::str("check"))]);
        let payload_line = payload.to_line();
        let event = with_spans(result("r1", payload), &rec.snapshot().spans);
        let line = event.to_line();
        // the payload bytes survive untouched inside the envelope
        assert!(line.contains(&payload_line), "{line}");
        let spans = event.get("spans").and_then(Json::as_arr).expect("summary");
        assert_eq!(spans.len(), 2, "aggregated by name");
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("check"));
        assert_eq!(spans[0].get("count").and_then(Json::as_i64), Some(1));
        assert_eq!(spans[1].get("name").and_then(Json::as_str), Some("explore"));
        assert_eq!(spans[1].get("count").and_then(Json::as_i64), Some(2));
        // the result payload itself has no spans member
        assert!(event.get("result").expect("payload").get("spans").is_none());
        // empty span lists leave the envelope untouched
        let bare = result("r2", Json::obj([("kind", Json::str("simulate"))]));
        assert_eq!(with_spans(bare.clone(), &[]).to_line(), bare.to_line());
    }

    #[test]
    fn progress_with_carries_throughput_counters() {
        let monitor = moccml_engine::ExploreMonitor::new();
        let metrics = monitor.snapshot();
        let event = progress_with("r1", 10, 20, 3, &metrics);
        assert_eq!(event.get("event").and_then(Json::as_str), Some("progress"));
        assert_eq!(event.get("states").and_then(Json::as_i64), Some(10));
        for key in [
            "states_per_sec",
            "pending",
            "peak_frontier",
            "interned",
            "interner_occupancy",
        ] {
            assert!(event.get(key).is_some(), "missing {key}");
        }
    }
}
