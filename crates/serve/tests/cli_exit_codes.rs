//! The spawned `moccml` binary's contract: documented exit codes
//! (`0` pass, `1` property violation / nonconforming trace / denied
//! lint, `2` parse or usage error) on real processes, and byte-parity
//! between the binary and the in-process CLI — in both output formats.

use moccml_serve::cli;
use moccml_serve::json::Json;
use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_moccml")
}

fn example(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/specs")
        .join(name)
        .to_str()
        .expect("utf8 path")
        .to_owned()
}

fn defects() -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../analyze/tests/specs/defects.mcc")
        .to_str()
        .expect("utf8 path")
        .to_owned()
}

fn spawn(args: &[&str]) -> (Option<i32>, String) {
    let output = Command::new(bin())
        .args(args)
        .output()
        .expect("moccml binary runs");
    // the binary routes its report to stdout on success and stderr on
    // usage/parse errors; exactly one stream is ever written, so the
    // concatenation equals the in-process CLI's output
    let mut text = String::from_utf8_lossy(&output.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&output.stderr));
    (output.status.code(), text)
}

fn in_process(args: &[&str]) -> (i32, String) {
    let args: Vec<String> = args.iter().map(ToString::to_string).collect();
    let mut out = String::new();
    let code = cli::run(&args, &mut out);
    (code, out)
}

/// The binary and the in-process CLI print the same bytes and exit
/// with the same code, across delegated and serve-resolved paths.
fn assert_parity(args: &[&str], expected_code: i32) -> String {
    let (bin_code, bin_out) = spawn(args);
    let (lib_code, lib_out) = in_process(args);
    assert_eq!(lib_code, expected_code, "{args:?}:\n{lib_out}");
    assert_eq!(bin_code, Some(expected_code), "{args:?}:\n{bin_out}");
    assert_eq!(bin_out, lib_out, "binary/in-process divergence on {args:?}");
    bin_out
}

#[test]
fn exit_zero_when_everything_passes() {
    let spec = example("verification.mcc");
    let trace = example("verification.trace");
    let out = assert_parity(&["check", &spec, "--workers", "2"], 0);
    assert_eq!(out.matches("holds").count(), 3, "{out}");
    assert_parity(&["explore", &spec], 0);
    assert_parity(&["conformance", &spec, &trace], 0);
    assert_parity(&["lint", &spec, "--deny", "warnings"], 0);
    assert_parity(&["--help"], 0);
    let json = assert_parity(&["check", &spec, "--format", "json"], 0);
    let payload = Json::parse(json.trim()).expect("one JSON object");
    assert_eq!(payload.get("violated").and_then(Json::as_bool), Some(false));
}

#[test]
fn exit_one_on_violated_verdicts() {
    let pam = example("pam.mcc");
    let out = assert_parity(&["check", &pam, "--workers", "2"], 1);
    assert_eq!(out.matches("VIOLATED").count(), 2, "{out}");
    assert_parity(&["lint", &defects()], 1);
    let json = assert_parity(&["check", &pam, "--format", "json"], 1);
    let payload = Json::parse(json.trim()).expect("one JSON object");
    assert_eq!(payload.get("violated").and_then(Json::as_bool), Some(true));
}

#[test]
fn exit_two_on_usage_parse_and_io_errors() {
    assert_parity(&[], 2);
    assert_parity(&["frobnicate", "x.mcc"], 2);
    assert_parity(&["check", "/nonexistent/x.mcc"], 2);
    assert_parity(&["check", "/nonexistent/x.mcc", "--format", "json"], 2);
    assert_parity(&["client"], 2);
    let broken = std::env::temp_dir().join("moccml-exit-codes-broken.mcc");
    std::fs::write(&broken, "spec x {\n  events a b;\n}").expect("temp file writes");
    let broken = broken.to_str().expect("utf8").to_owned();
    let out = assert_parity(&["check", &broken], 2);
    assert!(out.contains(":2:12:"), "parse errors carry line:col: {out}");
    assert_parity(&["check", &broken, "--format", "json"], 2);
}

#[test]
fn json_witness_schedules_equal_the_text_rendering() {
    let pam = example("pam.mcc");
    let (_, text) = spawn(&["check", &pam]);
    let (_, json) = spawn(&["check", &pam, "--format", "json"]);
    let payload = Json::parse(json.trim()).expect("one JSON object");
    let props = payload
        .get("properties")
        .and_then(Json::as_arr)
        .expect("properties");
    let mut witnesses = 0;
    for prop in props {
        let Some(witness) = prop.get("witness") else {
            continue;
        };
        witnesses += 1;
        let steps = witness.get("steps").and_then(Json::as_i64).expect("steps");
        let schedule = witness
            .get("schedule")
            .and_then(Json::as_str)
            .expect("schedule");
        assert!(
            text.contains(&format!("witness ({steps} steps): {schedule}")),
            "JSON witness must appear verbatim in the text verdict:\n{text}"
        );
    }
    assert_eq!(witnesses, 2, "pam.mcc has two violated properties");
}
