//! End-to-end acceptance of the verification service over real TCP:
//! a spawned `moccml serve` daemon answering a multi-request session —
//! concurrent jobs whose verdicts byte-match the one-shot CLI, a cache
//! hit observable through `status`, a cancelled long-running explore
//! that leaves the worker pool healthy, and a graceful shutdown.

use moccml_serve::json::Json;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn example(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/specs")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// A running daemon on an ephemeral port, killed on drop so a failing
/// test never leaks the process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_moccml"))
            .arg("serve")
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("banner line");
        let addr = banner
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in banner")
            .to_owned();
        assert!(banner.starts_with("moccml-serve listening on "), "{banner}");
        Daemon { child, addr }
    }

    /// Sends request lines on one connection and reads events until
    /// every sent id has its terminal event.
    fn session(&self, lines: &[String]) -> Vec<Json> {
        let stream = TcpStream::connect(&self.addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        let mut writer = stream.try_clone().expect("clones");
        for line in lines {
            writer.write_all(line.as_bytes()).expect("sends");
            writer.write_all(b"\n").expect("sends");
        }
        writer.flush().expect("flushes");
        let mut pending: HashSet<String> = lines
            .iter()
            .map(|l| {
                Json::parse(l)
                    .expect("requests are JSON")
                    .get("id")
                    .and_then(Json::as_str)
                    .expect("requests carry ids")
                    .to_owned()
            })
            .collect();
        let mut events = Vec::new();
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = line.expect("events arrive before the read timeout");
            let event = Json::parse(&line).expect("events are JSON");
            if matches!(
                event.get("event").and_then(Json::as_str),
                Some("result" | "error" | "cancelled")
            ) {
                if let Some(id) = event.get("id").and_then(Json::as_str) {
                    pending.remove(id);
                }
            }
            events.push(event);
            if pending.is_empty() {
                break;
            }
        }
        assert!(pending.is_empty(), "unanswered requests: {pending:?}");
        events
    }

    fn shutdown(mut self) {
        let events = self.session(&[r#"{"id":"bye","method":"shutdown"}"#.to_owned()]);
        assert_eq!(
            terminal(&events, "bye").get("event").and_then(Json::as_str),
            Some("result"),
            "graceful shutdown answers before exiting"
        );
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("child status") {
                Some(status) => {
                    assert!(status.success(), "daemon exits cleanly: {status:?}");
                    break;
                }
                None => {
                    assert!(Instant::now() < deadline, "daemon never exited");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn terminal(events: &[Json], id: &str) -> Json {
    events
        .iter()
        .find(|e| {
            e.get("id").and_then(Json::as_str) == Some(id)
                && matches!(
                    e.get("event").and_then(Json::as_str),
                    Some("result" | "error" | "cancelled")
                )
        })
        .unwrap_or_else(|| panic!("no terminal event for {id}: {events:?}"))
        .clone()
}

fn result_payload(events: &[Json], id: &str) -> Json {
    let event = terminal(events, id);
    assert_eq!(
        event.get("event").and_then(Json::as_str),
        Some("result"),
        "{id} must succeed: {event:?}"
    );
    event.get("result").cloned().expect("result payload")
}

/// Runs the one-shot CLI binary in `--format json` mode and returns
/// its single output line.
fn one_shot_json(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_moccml"))
        .args(args)
        .args(["--format", "json"])
        .output()
        .expect("one-shot CLI runs");
    String::from_utf8_lossy(&output.stdout).trim().to_owned()
}

fn request(id: &str, method: &str, extra: &[(&'static str, Json)]) -> String {
    let mut members = vec![("id", Json::str(id)), ("method", Json::str(method))];
    members.extend(extra.iter().cloned());
    Json::obj(members).to_line()
}

#[test]
fn concurrent_session_verdicts_byte_match_the_one_shot_cli() {
    let pam = example("pam.mcc");
    let verification = example("verification.mcc");
    let trace = example("verification.trace");
    let pam_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/pam.mcc");
    let ver_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/verification.mcc");
    let trace_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/verification.trace");

    // the one-shot CLI answers, computed independently of the daemon
    let expected_check = one_shot_json(&["check", pam_path.to_str().expect("utf8")]);
    let expected_explore = one_shot_json(&["explore", pam_path.to_str().expect("utf8")]);
    let expected_conformance = one_shot_json(&[
        "conformance",
        ver_path.to_str().expect("utf8"),
        trace_path.to_str().expect("utf8"),
    ]);

    let daemon = Daemon::start(&["--workers", "2", "--cache-capacity", "8"]);
    // three concurrent jobs on one connection: two methods against the
    // same spec (exercising the cache) plus an independent conformance
    let events = daemon.session(&[
        request("check-1", "check", &[("spec", Json::str(&pam))]),
        request("explore-1", "explore", &[("spec", Json::str(&pam))]),
        request(
            "conf-1",
            "conformance",
            &[
                ("spec", Json::str(&verification)),
                ("trace", Json::str(&trace)),
            ],
        ),
    ]);
    assert_eq!(
        result_payload(&events, "check-1").to_line(),
        expected_check,
        "served check verdict byte-matches the one-shot CLI"
    );
    assert_eq!(
        result_payload(&events, "explore-1").to_line(),
        expected_explore,
        "served explore metrics byte-match the one-shot CLI"
    );
    assert_eq!(
        result_payload(&events, "conf-1").to_line(),
        expected_conformance,
        "served conformance verdict byte-matches the one-shot CLI"
    );

    // the pam spec was compiled once and hit once; a reformatted copy
    // (extra whitespace) still hits the canonical cache key
    let reformatted = format!("// reformatted\n{}\n", pam.replace("  ", "\t  "));
    let events = daemon.session(&[request(
        "check-2",
        "check",
        &[("spec", Json::str(&reformatted))],
    )]);
    assert_eq!(
        result_payload(&events, "check-2").to_line(),
        expected_check,
        "a reformatted spec produces the identical verdict"
    );
    // status only after check-2's terminal: it is answered
    // synchronously and would otherwise race the queued job
    let events = daemon.session(&[request("status-1", "status", &[])]);
    let status = result_payload(&events, "status-1");
    let cache = status.get("cache").expect("cache stats");
    let hits = cache.get("hits").and_then(Json::as_i64).expect("hits");
    let misses = cache.get("misses").and_then(Json::as_i64).expect("misses");
    assert!(hits >= 2, "cache hits observable via status: {status:?}");
    assert_eq!(
        misses, 2,
        "pam + verification compiled once each: {status:?}"
    );

    daemon.shutdown();
}

#[test]
fn cancelled_explore_does_not_poison_the_worker_pool() {
    // a single worker so a poisoned pool would hang the follow-up job
    let daemon = Daemon::start(&["--workers", "1"]);
    let big = "spec big {\n  events a, b, c;\n  constraint c1 = precedes(a, b);\n  constraint c2 = precedes(b, c);\n}\n";

    let stream = TcpStream::connect(&daemon.addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clones");
    let explore = request(
        "big-1",
        "explore",
        &[
            ("spec", Json::str(big)),
            ("max_states", Json::Int(100_000_000)),
            ("timeout_ms", Json::Int(120_000)),
        ],
    );
    writer.write_all(explore.as_bytes()).expect("sends");
    writer.write_all(b"\n").expect("sends");
    writer.flush().expect("flushes");

    // wait until the job demonstrably runs, then cancel it
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut saw_progress = false;
    let cancel = request("kill-1", "cancel", &[("target", Json::str("big-1"))]);
    let outcome = loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("reads") > 0,
            "daemon hung up"
        );
        let event = Json::parse(line.trim()).expect("events are JSON");
        match event.get("event").and_then(Json::as_str) {
            Some("progress") if !saw_progress => {
                saw_progress = true;
                writer.write_all(cancel.as_bytes()).expect("sends");
                writer.write_all(b"\n").expect("sends");
                writer.flush().expect("flushes");
            }
            Some("result" | "error" | "cancelled")
                if event.get("id").and_then(Json::as_str) == Some("big-1") =>
            {
                break event;
            }
            _ => {}
        }
    };
    assert!(saw_progress, "the explore streamed progress before dying");
    assert_eq!(
        outcome.get("event").and_then(Json::as_str),
        Some("cancelled"),
        "a cancelled job reports `cancelled`, never a verdict: {outcome:?}"
    );

    // the lone worker survives: an ordinary job completes afterwards
    let alt = "spec alt {\n  events a, b;\n  constraint alt = alternates(a, b);\n  assert never((a && b));\n}\n";
    let events = daemon.session(&[request("after", "check", &[("spec", Json::str(alt))])]);
    let payload = result_payload(&events, "after");
    assert_eq!(payload.get("violated").and_then(Json::as_bool), Some(false));

    daemon.shutdown();
}

#[test]
fn lint_simulate_and_error_paths_over_tcp() {
    let daemon = Daemon::start(&[]);
    let warny = "spec s {\n  events a, b, orphan;\n  constraint c = alternates(a, b);\n  assert never((a && b));\n}\n";
    let events = daemon.session(&[
        request(
            "lint-1",
            "lint",
            &[
                ("spec", Json::str(warny)),
                ("deny_warnings", Json::Bool(true)),
            ],
        ),
        request(
            "sim-1",
            "simulate",
            &[("spec", Json::str(warny)), ("steps", Json::Int(4))],
        ),
        request("bad-1", "check", &[("spec", Json::str("spec broken {"))]),
        request("nospec", "check", &[]),
    ]);
    let lint = result_payload(&events, "lint-1");
    assert_eq!(lint.get("warnings").and_then(Json::as_i64), Some(1));
    assert_eq!(lint.get("failed").and_then(Json::as_bool), Some(true));
    let sim = result_payload(&events, "sim-1");
    assert_eq!(
        sim.get("schedule").and_then(Json::as_str),
        Some("a ; b ; a ; b")
    );
    assert_eq!(
        terminal(&events, "bad-1")
            .get("event")
            .and_then(Json::as_str),
        Some("error"),
        "compile failures are error events"
    );
    assert_eq!(
        terminal(&events, "nospec")
            .get("event")
            .and_then(Json::as_str),
        Some("error")
    );
    daemon.shutdown();
}
