//! The statistical machinery: sample-size bounds, sequential tests and
//! confidence intervals.
//!
//! Everything here is plain arithmetic on the trace verdict stream —
//! no randomness, no threading — so the sampler can stay the only
//! place where nondeterminism could creep in (and it forks seeds per
//! trace index precisely so it doesn't).

/// The Okamoto/Chernoff fixed sample size: the smallest `N` such that
/// `N` Bernoulli samples estimate the true probability within
/// `epsilon` with confidence `1 - delta`,
/// `N = ⌈ln(2/δ) / (2ε²)⌉`.
///
/// # Example
///
/// ```
/// // the classic (ε = 0.01, δ = 0.05) budget
/// assert_eq!(moccml_smc::okamoto_sample_size(0.01, 0.05), 18_445);
/// ```
///
/// # Panics
///
/// Panics unless `0 < epsilon < 1` and `0 < delta < 1`.
#[must_use]
pub fn okamoto_sample_size(epsilon: f64, delta: f64) -> usize {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0, 1), got {epsilon}"
    );
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0, 1), got {delta}"
    );
    let n = ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil();
    n as usize
}

/// The Wilson score interval for `violations` successes out of
/// `traces` Bernoulli samples at confidence `1 - delta`. Returns
/// `(0.0, 1.0)` for an empty sample.
///
/// Unlike the naive normal interval, Wilson stays inside `[0, 1]` and
/// keeps coverage near the boundaries — exactly where rare-violation
/// estimates live.
#[must_use]
pub fn wilson_interval(violations: usize, traces: usize, delta: f64) -> (f64, f64) {
    if traces == 0 {
        return (0.0, 1.0);
    }
    let n = traces as f64;
    let p = violations as f64 / n;
    let z = normal_quantile(1.0 - delta / 2.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The standard normal quantile function `Φ⁻¹(p)`, computed with
/// Acklam's rational approximation (absolute error below `1.15e-9`
/// over the open unit interval) — enough for confidence intervals,
/// without pulling a numerics dependency into the workspace.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let tail = |q: f64| -> f64 {
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    if p < P_LOW {
        tail((-2.0 * p.ln()).sqrt())
    } else if p > 1.0 - P_LOW {
        -tail((-2.0 * (1.0 - p).ln()).sqrt())
    } else {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    }
}

/// Wald's sequential probability ratio test for "the violation
/// probability exceeds `threshold`", with indifference region
/// `[threshold - epsilon, threshold + epsilon]` and symmetric error
/// bounds `alpha = beta = delta`.
///
/// Feed it the trace verdicts **in trace-index order** (the sampler's
/// aggregator guarantees this) and it answers as soon as the
/// accumulated log-likelihood ratio crosses a boundary — typically
/// orders of magnitude earlier than the fixed Okamoto budget when the
/// true probability is far from the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Sprt {
    llr: f64,
    llr_violation: f64,
    llr_ok: f64,
    accept_above: f64,
    accept_below: f64,
}

/// The outcome of a decided [`Sprt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SprtDecision {
    /// `H1` accepted: the violation probability is at or above
    /// `threshold + epsilon` (with error probability at most `delta`).
    Above,
    /// `H0` accepted: the violation probability is at or below
    /// `threshold - epsilon` (with error probability at most `delta`).
    Below,
}

impl Sprt {
    /// A fresh test of `p >= threshold` versus `p <= threshold` with
    /// indifference half-width `epsilon` and error bound `delta`. The
    /// two hypothesis points are clamped into the open unit interval,
    /// so thresholds near 0 or 1 stay well-defined.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold`, `epsilon` and `delta` all lie in
    /// `(0, 1)`.
    #[must_use]
    pub fn new(threshold: f64, epsilon: f64, delta: f64) -> Sprt {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1), got {threshold}"
        );
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0, 1), got {delta}"
        );
        let p0 = (threshold - epsilon).max(1e-9);
        let p1 = (threshold + epsilon).min(1.0 - 1e-9);
        Sprt {
            llr: 0.0,
            llr_violation: (p1 / p0).ln(),
            llr_ok: ((1.0 - p1) / (1.0 - p0)).ln(),
            accept_above: ((1.0 - delta) / delta).ln(),
            accept_below: (delta / (1.0 - delta)).ln(),
        }
    }

    /// Folds in the next trace verdict; returns the decision once a
    /// boundary is crossed. Observations after a decision keep
    /// returning a decision (the ratio only moves further out), but
    /// the sampler stops at the first one.
    pub fn observe(&mut self, violated: bool) -> Option<SprtDecision> {
        self.llr += if violated {
            self.llr_violation
        } else {
            self.llr_ok
        };
        if self.llr >= self.accept_above {
            Some(SprtDecision::Above)
        } else if self.llr <= self.accept_below {
            Some(SprtDecision::Below)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn okamoto_matches_hand_computed_budgets() {
        // ln(2/0.05) / (2·0.01²) = 3.6889/0.0002 = 18444.4 → 18445
        assert_eq!(okamoto_sample_size(0.01, 0.05), 18_445);
        // ln(2/0.05) / (2·0.1²) = 3.6889/0.02 = 184.4 → 185
        assert_eq!(okamoto_sample_size(0.1, 0.05), 185);
        // tighter delta only grows the budget logarithmically
        assert!(okamoto_sample_size(0.1, 0.005) < 2 * okamoto_sample_size(0.1, 0.05));
    }

    #[test]
    fn normal_quantile_hits_the_textbook_values() {
        for (p, z) in [
            (0.5, 0.0),
            (0.975, 1.959_964),
            (0.995, 2.575_829),
            (0.025, -1.959_964),
            (0.001, -3.090_232), // tail branch
        ] {
            assert!(
                (normal_quantile(p) - z).abs() < 1e-4,
                "Φ⁻¹({p}) = {} ≠ {z}",
                normal_quantile(p)
            );
        }
    }

    #[test]
    fn wilson_brackets_the_estimate_and_stays_in_the_unit_interval() {
        for (v, n) in [(0usize, 100usize), (1, 100), (50, 100), (100, 100)] {
            let (lo, hi) = wilson_interval(v, n, 0.05);
            let p = v as f64 / n as f64;
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
            assert!(lo <= p && p <= hi, "[{lo}, {hi}] misses {p}");
        }
        assert_eq!(wilson_interval(0, 0, 0.05), (0.0, 1.0));
    }

    #[test]
    fn wilson_tightens_with_more_samples() {
        let (lo1, hi1) = wilson_interval(10, 100, 0.05);
        let (lo2, hi2) = wilson_interval(100, 1000, 0.05);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn sprt_accepts_above_on_a_violation_streak() {
        let mut sprt = Sprt::new(0.5, 0.1, 0.05);
        let mut decision = None;
        for i in 0..1000 {
            decision = sprt.observe(true);
            if decision.is_some() {
                assert!(i < 100, "streak should decide quickly");
                break;
            }
        }
        assert_eq!(decision, Some(SprtDecision::Above));
    }

    #[test]
    fn sprt_accepts_below_on_a_clean_streak() {
        let mut sprt = Sprt::new(0.5, 0.1, 0.05);
        let mut decision = None;
        for _ in 0..1000 {
            decision = sprt.observe(false);
            if decision.is_some() {
                break;
            }
        }
        assert_eq!(decision, Some(SprtDecision::Below));
    }

    #[test]
    fn sprt_stays_undecided_inside_the_indifference_region() {
        // perfectly alternating verdicts ≈ p = 0.5 = the threshold:
        // the ratio oscillates around 0 and never escapes
        let mut sprt = Sprt::new(0.5, 0.1, 0.05);
        for i in 0..10_000 {
            assert_eq!(sprt.observe(i % 2 == 0), None, "at observation {i}");
        }
    }

    #[test]
    fn extreme_thresholds_are_clamped_not_infinite() {
        let low = Sprt::new(0.05, 0.1, 0.05); // p0 clamps to 1e-9
        assert!(low.llr_violation.is_finite() && low.llr_ok.is_finite());
        let high = Sprt::new(0.95, 0.1, 0.05); // p1 clamps to 1 - 1e-9
        assert!(high.llr_violation.is_finite() && high.llr_ok.is_finite());
    }
}
