//! # moccml-smc
//!
//! Statistical model checking for the MoCCML reproduction: when the
//! scheduling state-space is too large to explore exhaustively,
//! estimate the probability that a random schedule violates a property
//! — with explicit statistical guarantees instead of exhaustiveness.
//!
//! The checker samples random traces of a compiled
//! [`Program`](moccml_engine::Program) (fresh
//! [`Cursor`](moccml_engine::Cursor) per trace, a pluggable
//! [`TraceScheduler`] choosing uniformly among the acceptable steps)
//! and evaluates each against the same bounded-temporal monitor core
//! ([`TraceEvaluator`](moccml_verify::TraceEvaluator)) the exhaustive
//! checker compiles its observers from — one semantics, two search
//! strategies. Two statistical regimes share the sampler:
//!
//! * **Fixed-sample estimation** (the default): the
//!   Okamoto/Chernoff bound [`okamoto_sample_size`] turns `(ε, δ)`
//!   into a sample count `N = ⌈ln(2/δ)/(2ε²)⌉` such that the reported
//!   estimate is within `ε` of the true violation probability with
//!   confidence `1 − δ`.
//! * **Sequential testing** ([`SmcOptions::with_prob_threshold`]):
//!   Wald's [`Sprt`] decides "violation probability above/below θ"
//!   with indifference region `θ ± ε`, typically after a small
//!   fraction of the fixed budget.
//!
//! Every report carries a Wilson score interval
//! ([`wilson_interval`]), and the first violating trace comes back as
//! an ordinary [`Counterexample`](moccml_verify::Counterexample) —
//! re-validated and minimized through the verify layer, so a
//! rare-event witness found statistically replays exactly like one
//! found exhaustively.
//!
//! Reports are **independent of the worker count**: trace `i` forks
//! its scheduler seed from the base seed by SplitMix64 stream
//! splitting, and the aggregator consumes verdicts in trace-index
//! order, discarding parallel overshoot past the decision point.
//!
//! ## Example
//!
//! ```
//! use moccml_ccsl::Alternation;
//! use moccml_engine::Program;
//! use moccml_kernel::{Specification, StepPred, Universe};
//! use moccml_smc::{check_statistical, SmcOptions, SmcVerdict};
//! use moccml_verify::Prop;
//!
//! let mut u = Universe::new();
//! let (a, b) = (u.event("a"), u.event("b"));
//! let mut spec = Specification::new("alt", u);
//! spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
//! let program = Program::new(spec);
//!
//! // "b never fires" is violated on every sampled trace: the
//! // estimate converges to 1 and a minimized witness comes back
//! let prop = Prop::Never(StepPred::fired(b));
//! let options = SmcOptions::default().with_epsilon(0.1).with_delta(0.05);
//! let report = check_statistical(&program, &prop, &options);
//! assert_eq!(report.verdict, SmcVerdict::Estimated);
//! assert!(report.estimate > 0.9);
//! let witness = report.witness.expect("every trace violates");
//! assert!(witness.replays_on(&program));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod sampler;

pub use bounds::{normal_quantile, okamoto_sample_size, wilson_interval, Sprt, SprtDecision};
pub use sampler::{
    check_statistical, check_statistical_observed, SchedulerFactory, SmcMode, SmcOptions,
    SmcProgress, SmcReport, SmcRun, SmcVerdict, TraceScheduler, UniformScheduler,
};

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Exclusion, SubClock};
    use moccml_engine::Program;
    use moccml_kernel::{Specification, StepPred, Universe};
    use moccml_obs::Recorder;
    use moccml_verify::Prop;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Two free-running events under exclusion: each step fires `a`
    /// or `b` (never both), so "eventually a within k" is violated
    /// exactly by the all-`b` prefixes — probability 2⁻ᵏ per trace
    /// under the uniform scheduler.
    fn coin_flip() -> (Arc<Program>, moccml_kernel::EventId, moccml_kernel::EventId) {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("coin", u);
        spec.add_constraint(Box::new(Exclusion::new("a#b", [a, b])));
        (Program::new(spec), a, b)
    }

    #[test]
    fn estimate_tracks_the_true_probability() {
        let (program, a, _) = coin_flip();
        // violated iff the first 2 steps both miss `a`: p = 1/4
        let prop = Prop::EventuallyWithin(StepPred::fired(a), 2);
        let options = SmcOptions::default().with_epsilon(0.05).with_delta(0.02);
        let report = check_statistical(&program, &prop, &options);
        assert_eq!(report.verdict, SmcVerdict::Estimated);
        assert!(
            (report.estimate - 0.25).abs() < 0.05,
            "estimate {} should be within ε of 0.25",
            report.estimate
        );
        assert!(report.ci_low <= report.estimate && report.estimate <= report.ci_high);
        assert_eq!(report.traces, okamoto_sample_size(0.05, 0.02));
    }

    #[test]
    fn reports_are_identical_for_every_worker_count() {
        let (program, a, _) = coin_flip();
        let prop = Prop::EventuallyWithin(StepPred::fired(a), 3);
        let options = SmcOptions::default().with_epsilon(0.08).with_seed(7);
        let baseline = check_statistical(&program, &prop, &options.clone().with_workers(1));
        for workers in [2, 8] {
            let parallel =
                check_statistical(&program, &prop, &options.clone().with_workers(workers));
            assert_eq!(baseline, parallel, "workers={workers}");
        }
    }

    #[test]
    fn witnesses_replay_and_are_minimal() {
        let (program, a, _) = coin_flip();
        let prop = Prop::EventuallyWithin(StepPred::fired(a), 2);
        let options = SmcOptions::default().with_epsilon(0.1);
        let report = check_statistical(&program, &prop, &options);
        let witness = report.witness.expect("p = 1/4 surfaces a witness");
        assert!(witness.replays_on(&program));
        assert!(moccml_verify::is_witness(
            &program,
            &prop,
            &witness.schedule
        ));
        // minimal witness for eventually<=2: two steps without `a`
        assert_eq!(witness.schedule.len(), 2);
        assert!(report.witness_trace.is_some());
    }

    #[test]
    fn sprt_decides_early_on_a_sure_violation() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        // alternation forces a;b;a;… — "never b" is violated with p = 1
        let prop = Prop::Never(StepPred::fired(b));
        let options = SmcOptions::default().with_prob_threshold(0.5);
        let report = check_statistical(&program, &prop, &options);
        assert_eq!(report.verdict, SmcVerdict::AboveThreshold);
        assert!(
            report.traces < okamoto_sample_size(options.epsilon, options.delta) / 10,
            "SPRT should stop well before the fixed budget, used {}",
            report.traces
        );
        assert_eq!(report.violations, report.traces);
    }

    #[test]
    fn sprt_rejects_when_violations_are_impossible() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let program = Program::new(spec);
        // a only fires with b, so `a && !b` never holds: p = 0
        let prop = Prop::Always(StepPred::implies(a, b));
        let options = SmcOptions::default().with_prob_threshold(0.3);
        let report = check_statistical(&program, &prop, &options);
        assert_eq!(report.verdict, SmcVerdict::BelowThreshold);
        assert_eq!(report.violations, 0);
        assert!(report.witness.is_none());
    }

    #[test]
    fn observed_run_records_counters_and_progress() {
        let (program, a, _) = coin_flip();
        let prop = Prop::EventuallyWithin(StepPred::fired(a), 2);
        let options = SmcOptions::default().with_epsilon(0.1).with_workers(2);
        let recorder = Recorder::new();
        let calls = AtomicUsize::new(0);
        let progress = |_: &SmcProgress| {
            calls.fetch_add(1, Ordering::Relaxed);
        };
        let run = SmcRun {
            recorder: &recorder,
            progress: Some(&progress),
            cancel: None,
            progress_every: 64,
        };
        let report = check_statistical_observed(&program, &prop, &options, &run);
        let snap = recorder.snapshot();
        // counters tally every executed trace (overshoot included),
        // so they are at least what the report consumed
        assert!(snap.counter("smc_traces").unwrap_or(0) >= report.traces as u64);
        assert_eq!(
            snap.counter_sum("smc_worker"),
            snap.counter("smc_traces").unwrap_or(0),
            "per-worker counters roll up to the total"
        );
        assert!(snap.counter("smc_violations").unwrap_or(0) >= report.violations as u64);
        assert!(
            calls.load(Ordering::Relaxed) >= 2,
            "throttled progress fired"
        );
        assert!(snap.spans.iter().any(|s| s.name == "smc"));
    }

    #[test]
    fn cancellation_stops_the_run_cooperatively() {
        let (program, a, _) = coin_flip();
        let prop = Prop::EventuallyWithin(StepPred::fired(a), 4);
        // a big budget that a cancelled run must not finish
        let options = SmcOptions::default().with_epsilon(0.005).with_delta(0.01);
        let recorder = Recorder::disabled();
        let cancel = AtomicBool::new(false);
        let progress = |p: &SmcProgress| {
            if p.traces >= 256 {
                cancel.store(true, Ordering::Relaxed);
            }
        };
        let run = SmcRun {
            recorder: &recorder,
            progress: Some(&progress),
            cancel: Some(&cancel),
            progress_every: 128,
        };
        let report = check_statistical_observed(&program, &prop, &options, &run);
        assert_eq!(report.verdict, SmcVerdict::Cancelled);
        assert!(report.traces < okamoto_sample_size(0.005, 0.01));
    }

    #[test]
    fn custom_schedulers_plug_in() {
        /// Always picks the last (largest) candidate — deterministic,
        /// so every trace is the same maximal run.
        struct LastStep;
        impl TraceScheduler for LastStep {
            fn choose(&mut self, candidates: &[moccml_kernel::Step]) -> usize {
                candidates.len() - 1
            }
        }
        let (program, a, _) = coin_flip();
        // the largest step in the exclusion spec fires `b` (sorted
        // order puts {b} last), so `a` never fires: p = 1
        let prop = Prop::EventuallyWithin(StepPred::fired(a), 3);
        let options = SmcOptions::default()
            .with_epsilon(0.1)
            .with_scheduler(Arc::new(|_| Box::new(LastStep)));
        let report = check_statistical(&program, &prop, &options);
        assert!(report.estimate == 1.0 || report.estimate == 0.0);
        // whichever branch the canonical order picks, it picks it for
        // every trace
        assert!(report.violations == 0 || report.violations == report.traces);
    }

    #[test]
    fn deadlocks_conclude_liveness_as_violated() {
        // two strict precedences in a cycle block both events forever:
        // every state is a deadlock, so DeadlockFree is violated with
        // probability 1 — by the zero-length schedule
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("dead", u);
        spec.add_constraint(Box::new(moccml_ccsl::Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(moccml_ccsl::Precedence::strict("b<a", b, a)));
        let program = Program::new(spec);
        let prop = Prop::DeadlockFree;
        let options = SmcOptions::default()
            .with_epsilon(0.1)
            .with_max_trace_len(8);
        let report = check_statistical(&program, &prop, &options);
        assert_eq!(report.verdict, SmcVerdict::Estimated);
        assert!((report.estimate - 1.0).abs() < f64::EPSILON);
        let witness = report.witness.expect("deadlock witness");
        assert!(witness.schedule.is_empty());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn out_of_range_epsilon_is_rejected() {
        let (program, a, _) = coin_flip();
        let prop = Prop::EventuallyWithin(StepPred::fired(a), 2);
        let _ = check_statistical(&program, &prop, &SmcOptions::default().with_epsilon(0.0));
    }
}
