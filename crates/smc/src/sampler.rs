//! The parallel trace engine: fork-seeded Monte-Carlo sampling with an
//! index-ordered aggregator.
//!
//! Determinism contract: trace `i` is driven by a scheduler seeded
//! from `fork(seed, i)` — a SplitMix64 stream split, independent of
//! which worker runs it — and the aggregator consumes verdicts in
//! strict trace-index order, discarding any overshoot past the
//! decision point. The resulting [`SmcReport`] is therefore identical
//! for every `workers` count, which the property suite pins at
//! `{1, 2, 8}`.

use crate::bounds::{okamoto_sample_size, wilson_interval, Sprt, SprtDecision};
use moccml_engine::{Cursor, Program, SolverOptions, SplitMix64};
use moccml_kernel::{Schedule, Step};
use moccml_obs::Recorder;
use moccml_verify::{
    is_witness, minimize_witness, Counterexample, Prop, TraceEvaluator, TraceStatus,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// Strategy for picking one step among the acceptable ones along a
/// sampled trace — the pluggable scheduler of the statistical checker.
///
/// Unlike the engine's [`Policy`](moccml_engine::Policy) (which sees a
/// cursor for lookahead), a trace scheduler only sees the sorted
/// candidate list: it must be a pure function of its seed and the
/// candidates, so trace `i` replays identically on any worker.
pub trait TraceScheduler: Send {
    /// Picks the index of one candidate. `candidates` is never empty
    /// (the sampler concludes a deadlock itself).
    fn choose(&mut self, candidates: &[Step]) -> usize;
}

/// The default scheduler: uniformly random among the acceptable steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformScheduler {
    rng: SplitMix64,
}

impl UniformScheduler {
    /// A uniform scheduler driven by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> UniformScheduler {
        UniformScheduler {
            rng: SplitMix64::new(seed),
        }
    }
}

impl TraceScheduler for UniformScheduler {
    fn choose(&mut self, candidates: &[Step]) -> usize {
        self.rng.next_below(candidates.len())
    }
}

/// Builds one scheduler per trace from the trace's forked seed.
pub type SchedulerFactory = Arc<dyn Fn(u64) -> Box<dyn TraceScheduler> + Send + Sync>;

/// Tuning knobs for [`check_statistical`]. All fields have
/// conservative defaults; the builder methods mirror the CLI flags.
#[derive(Clone)]
pub struct SmcOptions {
    /// Half-width of the estimation error (fixed-sample mode) and of
    /// the SPRT indifference region (sequential mode). Default `0.01`.
    pub epsilon: f64,
    /// Allowed error probability; every report carries a `1 - delta`
    /// confidence interval. Default `0.05`.
    pub delta: f64,
    /// `Some(θ)` switches to sequential (SPRT) mode, deciding whether
    /// the violation probability exceeds `θ`. Default `None`
    /// (fixed-sample estimation with the Okamoto budget).
    pub prob_threshold: Option<f64>,
    /// Traces longer than this are truncated and counted as
    /// non-violating unless already decided. Default `256`.
    pub max_trace_len: usize,
    /// Base seed; trace `i` forks its own SplitMix64 stream from it.
    /// Default `0xDA7E_2015`.
    pub seed: u64,
    /// Worker threads. The report is identical for every value.
    /// Default `1`.
    pub workers: usize,
    /// The scheduler factory — [`UniformScheduler`] unless replaced
    /// with [`with_scheduler`](SmcOptions::with_scheduler).
    pub scheduler: SchedulerFactory,
}

impl fmt::Debug for SmcOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmcOptions")
            .field("epsilon", &self.epsilon)
            .field("delta", &self.delta)
            .field("prob_threshold", &self.prob_threshold)
            .field("max_trace_len", &self.max_trace_len)
            .field("seed", &self.seed)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Default for SmcOptions {
    fn default() -> Self {
        SmcOptions {
            epsilon: 0.01,
            delta: 0.05,
            prob_threshold: None,
            max_trace_len: 256,
            seed: 0xDA7E_2015,
            workers: 1,
            scheduler: Arc::new(|seed| Box::new(UniformScheduler::new(seed))),
        }
    }
}

impl SmcOptions {
    /// Sets the estimation half-width ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the error probability δ.
    #[must_use]
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Switches to sequential (SPRT) mode against `threshold`.
    #[must_use]
    pub fn with_prob_threshold(mut self, threshold: f64) -> Self {
        self.prob_threshold = Some(threshold);
        self
    }

    /// Sets the trace truncation length.
    #[must_use]
    pub fn with_max_trace_len(mut self, len: usize) -> Self {
        self.max_trace_len = len;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the per-trace scheduler factory.
    #[must_use]
    pub fn with_scheduler(mut self, factory: SchedulerFactory) -> Self {
        self.scheduler = factory;
        self
    }

    fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon must be in (0, 1), got {}",
            self.epsilon
        );
        assert!(
            self.delta > 0.0 && self.delta < 1.0,
            "delta must be in (0, 1), got {}",
            self.delta
        );
        if let Some(t) = self.prob_threshold {
            assert!(
                t > 0.0 && t < 1.0,
                "prob-threshold must be in (0, 1), got {t}"
            );
        }
        assert!(self.max_trace_len > 0, "max-trace-len must be positive");
        assert!(self.workers > 0, "workers must be positive");
    }
}

/// Which statistical regime produced a report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SmcMode {
    /// Fixed-sample estimation with the Okamoto budget `samples`.
    FixedSample {
        /// The precomputed `⌈ln(2/δ)/(2ε²)⌉` sample count.
        samples: usize,
    },
    /// Sequential (SPRT) hypothesis testing against `threshold`.
    Sequential {
        /// The tested violation-probability threshold.
        threshold: f64,
    },
}

/// The conclusion of a statistical check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmcVerdict {
    /// Fixed-sample mode ran its full budget: `estimate` is within
    /// ε of the true violation probability with confidence `1 - δ`.
    Estimated,
    /// SPRT: the violation probability exceeds the threshold.
    AboveThreshold,
    /// SPRT: the violation probability is below the threshold.
    BelowThreshold,
    /// SPRT exhausted the Okamoto fallback budget without crossing a
    /// boundary (the true probability sits inside the indifference
    /// region); `estimate` still carries its Wilson interval.
    Undecided,
    /// The run was cancelled cooperatively; the report summarises the
    /// prefix sampled so far.
    Cancelled,
}

/// The result of a statistical check. Byte-identical for every
/// `workers` count given the same options (cancelled runs excepted —
/// cancellation is a wall-clock event).
#[derive(Debug, Clone, PartialEq)]
pub struct SmcReport {
    /// The regime that ran.
    pub mode: SmcMode,
    /// The conclusion.
    pub verdict: SmcVerdict,
    /// Traces consumed by the decision (overshoot from parallel
    /// workers is discarded, not counted).
    pub traces: usize,
    /// Violating traces among [`traces`](SmcReport::traces).
    pub violations: usize,
    /// The point estimate `violations / traces`.
    pub estimate: f64,
    /// `1 - delta`, the confidence of the interval below.
    pub confidence: f64,
    /// Lower end of the Wilson score interval.
    pub ci_low: f64,
    /// Upper end of the Wilson score interval.
    pub ci_high: f64,
    /// Index of the first violating trace, if any.
    pub witness_trace: Option<usize>,
    /// The first violating trace as an ordinary counterexample:
    /// re-validated through [`is_witness`] and minimized through the
    /// verify layer's greedy minimizer. Its `state` field is `0` — a
    /// statistical run has no explored state-space to index into.
    pub witness: Option<Counterexample>,
}

/// Live progress of a running check, handed to the progress callback
/// every [`SmcRun::progress_every`] consumed traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmcProgress {
    /// Traces consumed in index order so far.
    pub traces: usize,
    /// Violations among them.
    pub violations: usize,
    /// The sampling budget (Okamoto size; SPRT usually stops earlier).
    pub planned: usize,
}

/// Observation and control hooks for
/// [`check_statistical_observed`]. The plain [`check_statistical`]
/// entry point runs with all of them off.
pub struct SmcRun<'a> {
    /// Counters (`smc_traces`, `smc_violations`,
    /// `smc_worker<i>_traces`) and the `smc` span land here; pass
    /// [`Recorder::disabled`] for zero overhead.
    pub recorder: &'a Recorder,
    /// Called from the aggregator with monotone trace counts.
    pub progress: Option<&'a (dyn Fn(&SmcProgress) + Sync)>,
    /// Cooperative cancellation: workers re-check before every trace.
    pub cancel: Option<&'a AtomicBool>,
    /// Consumed-trace interval between progress calls; `0` means the
    /// default of 256.
    pub progress_every: usize,
}

impl<'a> SmcRun<'a> {
    /// Hooks with observability into `recorder` and nothing else.
    #[must_use]
    pub fn new(recorder: &'a Recorder) -> SmcRun<'a> {
        SmcRun {
            recorder,
            progress: None,
            cancel: None,
            progress_every: 0,
        }
    }
}

impl fmt::Debug for SmcRun<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmcRun")
            .field("recorder", self.recorder)
            .field("progress", &self.progress.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("progress_every", &self.progress_every)
            .finish()
    }
}

/// SplitMix64 stream splitting, mirroring the testkit's
/// `TestRng::fork`: trace `i` draws from a stream that depends only on
/// `(base, i)`, never on which worker picked it up.
fn fork(base: u64, index: u64) -> u64 {
    SplitMix64::new(base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// One sampled trace's outcome, as sent to the aggregator. The
/// schedule is only shipped for violating traces (witness material).
struct TraceOutcome {
    violated: bool,
    schedule: Option<Schedule>,
}

/// Samples one trace: uniform-or-custom scheduler over the acceptable
/// non-empty steps, verdict from the shared bounded-temporal
/// [`TraceEvaluator`] (deadlock concludes, truncation at
/// `max_trace_len` counts as non-violating).
fn run_trace(
    cursor: &mut Cursor,
    prop: &Prop,
    options: &SmcOptions,
    scheduler: &mut dyn TraceScheduler,
) -> TraceOutcome {
    cursor.reset();
    let solver = SolverOptions::default();
    let mut eval = TraceEvaluator::new(prop);
    let mut schedule = Schedule::new();
    loop {
        match eval.status() {
            TraceStatus::Violated => {
                return TraceOutcome {
                    violated: true,
                    schedule: Some(schedule),
                }
            }
            TraceStatus::Satisfied => {
                return TraceOutcome {
                    violated: false,
                    schedule: None,
                }
            }
            TraceStatus::Undecided => {}
        }
        let deadlocked = if schedule.len() >= options.max_trace_len {
            false
        } else {
            let candidates = cursor.acceptable_steps(&solver);
            if candidates.is_empty() {
                true
            } else {
                let step = candidates[scheduler.choose(&candidates)].clone();
                cursor
                    .fire(&step)
                    .expect("scheduler picked an acceptable step");
                eval.observe(&step);
                schedule.push(step);
                continue;
            }
        };
        let violated = eval.conclude(deadlocked);
        return TraceOutcome {
            violated,
            schedule: violated.then_some(schedule),
        };
    }
}

/// Statistically checks `prop` on `program` by Monte-Carlo trace
/// sampling — [`check_statistical_observed`] with observation and
/// cancellation off.
///
/// # Panics
///
/// Panics if `options` carry out-of-range parameters (see
/// [`SmcOptions`] field docs).
#[must_use]
pub fn check_statistical(program: &Program, prop: &Prop, options: &SmcOptions) -> SmcReport {
    let recorder = Recorder::disabled();
    check_statistical_observed(program, prop, options, &SmcRun::new(&recorder))
}

/// Statistically checks `prop` on `program`: samples random traces in
/// parallel, evaluates each with the shared bounded-temporal monitor,
/// and aggregates verdicts in trace-index order into an
/// [`SmcReport`].
///
/// In fixed-sample mode (no threshold) it runs the full Okamoto
/// budget and reports the estimate with its Wilson interval. In
/// sequential mode it feeds the index-ordered verdict stream to
/// Wald's SPRT and stops at the first boundary crossing, falling back
/// to [`SmcVerdict::Undecided`] if the Okamoto budget runs out first.
///
/// # Panics
///
/// Panics if `options` carry out-of-range parameters.
#[must_use]
pub fn check_statistical_observed(
    program: &Program,
    prop: &Prop,
    options: &SmcOptions,
    run: &SmcRun<'_>,
) -> SmcReport {
    options.validate();
    let _span = run.recorder.span("smc");
    let planned = okamoto_sample_size(options.epsilon, options.delta);
    let mode = match options.prob_threshold {
        Some(threshold) => SmcMode::Sequential { threshold },
        None => SmcMode::FixedSample { samples: planned },
    };
    let progress_every = if run.progress_every == 0 {
        256
    } else {
        run.progress_every
    };

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let traces_counter = run.recorder.counter("smc_traces");
    let violations_counter = run.recorder.counter("smc_violations");
    let (tx, rx) = mpsc::channel::<(usize, TraceOutcome)>();

    let agg = thread::scope(|scope| {
        for w in 0..options.workers {
            let tx = tx.clone();
            let worker_counter = run.recorder.counter(&format!("smc_worker{w}_traces"));
            let traces_counter = traces_counter.clone();
            let violations_counter = violations_counter.clone();
            let (next, stop) = (&next, &stop);
            let cancel = run.cancel;
            scope.spawn(move || {
                let mut cursor = program.cursor();
                loop {
                    if stop.load(Ordering::Relaxed)
                        || cancel.is_some_and(|c| c.load(Ordering::Relaxed))
                    {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= planned {
                        break;
                    }
                    let mut scheduler = (options.scheduler)(fork(options.seed, i as u64));
                    let outcome = run_trace(&mut cursor, prop, options, scheduler.as_mut());
                    traces_counter.incr();
                    worker_counter.incr();
                    if outcome.violated {
                        violations_counter.incr();
                    }
                    if tx.send((i, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        aggregate(&rx, &stop, &mode, options, run, planned, progress_every)
    });

    let estimate = if agg.consumed == 0 {
        0.0
    } else {
        agg.violations as f64 / agg.consumed as f64
    };
    let (ci_low, ci_high) = wilson_interval(agg.violations, agg.consumed, options.delta);
    let verdict = if agg.cancelled {
        SmcVerdict::Cancelled
    } else {
        match (&mode, agg.decision) {
            (SmcMode::FixedSample { .. }, _) => SmcVerdict::Estimated,
            (SmcMode::Sequential { .. }, Some(SprtDecision::Above)) => SmcVerdict::AboveThreshold,
            (SmcMode::Sequential { .. }, Some(SprtDecision::Below)) => SmcVerdict::BelowThreshold,
            (SmcMode::Sequential { .. }, None) => SmcVerdict::Undecided,
        }
    };
    let (witness_trace, witness) = match agg.witness {
        Some((index, schedule)) => {
            debug_assert!(
                is_witness(program, prop, &schedule),
                "sampled witnesses replay"
            );
            let minimized = minimize_witness(program, prop, &schedule);
            (
                Some(index),
                Some(Counterexample {
                    schedule: minimized,
                    state: 0,
                }),
            )
        }
        None => (None, None),
    };
    SmcReport {
        mode,
        verdict,
        traces: agg.consumed,
        violations: agg.violations,
        estimate,
        confidence: 1.0 - options.delta,
        ci_low,
        ci_high,
        witness_trace,
        witness,
    }
}

struct Aggregate {
    consumed: usize,
    violations: usize,
    witness: Option<(usize, Schedule)>,
    decision: Option<SprtDecision>,
    cancelled: bool,
}

/// Consumes verdicts in strict trace-index order (out-of-order
/// arrivals park in `pending`), feeds the SPRT in sequential mode and
/// raises `stop` at the decision point. Everything the report is
/// built from flows through here, which is what makes it independent
/// of the worker count.
fn aggregate(
    rx: &mpsc::Receiver<(usize, TraceOutcome)>,
    stop: &AtomicBool,
    mode: &SmcMode,
    options: &SmcOptions,
    run: &SmcRun<'_>,
    planned: usize,
    progress_every: usize,
) -> Aggregate {
    let mut pending: HashMap<usize, TraceOutcome> = HashMap::new();
    let mut sprt = match mode {
        SmcMode::Sequential { threshold } => {
            Some(Sprt::new(*threshold, options.epsilon, options.delta))
        }
        SmcMode::FixedSample { .. } => None,
    };
    let mut agg = Aggregate {
        consumed: 0,
        violations: 0,
        witness: None,
        decision: None,
        cancelled: false,
    };
    'recv: while let Ok((index, outcome)) = rx.recv() {
        pending.insert(index, outcome);
        while let Some(outcome) = pending.remove(&agg.consumed) {
            if outcome.violated {
                agg.violations += 1;
                if agg.witness.is_none() {
                    let schedule = outcome.schedule.expect("violations carry their schedule");
                    agg.witness = Some((agg.consumed, schedule));
                }
            }
            agg.consumed += 1;
            if let Some(sprt) = &mut sprt {
                agg.decision = sprt.observe(outcome.violated);
            }
            if agg.consumed.is_multiple_of(progress_every) {
                if let Some(progress) = run.progress {
                    progress(&SmcProgress {
                        traces: agg.consumed,
                        violations: agg.violations,
                        planned,
                    });
                }
            }
            if agg.decision.is_some() || agg.consumed == planned {
                stop.store(true, Ordering::Relaxed);
                break 'recv;
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    // an incomplete prefix with no decision means the workers quit on
    // the cancel flag
    agg.cancelled = agg.decision.is_none() && agg.consumed < planned_target(mode, planned) && {
        run.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
    };
    if let Some(progress) = run.progress {
        progress(&SmcProgress {
            traces: agg.consumed,
            violations: agg.violations,
            planned,
        });
    }
    agg
}

/// How many consumed traces count as "ran to completion" for `mode`.
fn planned_target(mode: &SmcMode, planned: usize) -> usize {
    match mode {
        SmcMode::FixedSample { samples } => *samples,
        SmcMode::Sequential { .. } => planned,
    }
}
