//! Compiling a parsed `.mcc` AST into the engine's compiled form: an
//! `Arc<Program>` plus the asserted properties as [`Prop`]s.
//!
//! Compilation is deterministic: events are interned in declaration
//! order, constraints are added in source order, so a `.mcc` file and
//! its programmatic transcription produce byte-identical state keys,
//! schedules and verdicts — the golden contract the CLI tests pin.

use crate::ast::{Arg, ConstraintDecl, Item, Name, PredAst, PropAst, SpecAst};
use crate::error::LangError;
use moccml_automata::{ParamKind, RelationLibrary};
use moccml_ccsl::{
    Alternation, Coincidence, Delay, Exclusion, FilteredBy, Intersection, Periodic, Precedence,
    SampledOn, SubClock, Union,
};
use moccml_engine::Program;
use moccml_kernel::{Constraint, EventId, Specification, StepPred, Universe};
use moccml_verify::Prop;
use std::sync::Arc;

/// The result of compiling a `.mcc` specification: the engine-ready
/// program and the asserted properties, ready for
/// [`moccml_verify::check_props`].
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The specification name (`spec <name> { … }`).
    pub name: String,
    /// The compiled program (events interned in declaration order,
    /// constraints in source order).
    pub program: Arc<Program>,
    /// The asserted properties, in source order.
    pub props: Vec<Prop>,
}

impl Compiled {
    /// The event universe of the compiled program.
    #[must_use]
    pub fn universe(&self) -> &Universe {
        self.program.specification().universe()
    }
}

fn resolve_err(line: usize, column: usize, message: String) -> LangError {
    LangError::Resolve {
        line,
        column,
        message,
    }
}

fn lookup_event(universe: &Universe, name: &Name) -> Result<EventId, LangError> {
    universe.lookup(&name.text).ok_or_else(|| {
        resolve_err(
            name.line,
            name.column,
            format!(
                "unknown event `{}` (declare it with `events …;`)",
                name.text
            ),
        )
    })
}

/// Extracts argument `i` as an event reference.
fn event_arg(decl: &ConstraintDecl, i: usize, universe: &Universe) -> Result<EventId, LangError> {
    match decl.args.get(i) {
        Some(Arg::Event(name)) => lookup_event(universe, name),
        Some(other) => {
            let (l, c) = other.position();
            Err(resolve_err(
                l,
                c,
                format!(
                    "`{}` expects an event as argument {}, found a {}",
                    decl.ctor,
                    i + 1,
                    other.kind()
                ),
            ))
        }
        None => Err(resolve_err(
            decl.ctor.line,
            decl.ctor.column,
            format!("`{}` is missing argument {}", decl.ctor, i + 1),
        )),
    }
}

/// Extracts argument `i` as an integer within `min..=max`.
fn int_arg(decl: &ConstraintDecl, i: usize, min: i64, max: i64) -> Result<i64, LangError> {
    match decl.args.get(i) {
        Some(Arg::Int(v, l, c)) => {
            if *v < min || *v > max {
                Err(resolve_err(
                    *l,
                    *c,
                    format!(
                        "argument {} of `{}` must be in {min}..={max}, found {v}",
                        i + 1,
                        decl.ctor
                    ),
                ))
            } else {
                Ok(*v)
            }
        }
        Some(other) => {
            let (l, c) = other.position();
            Err(resolve_err(
                l,
                c,
                format!(
                    "`{}` expects an integer as argument {}, found a {}",
                    decl.ctor,
                    i + 1,
                    other.kind()
                ),
            ))
        }
        None => Err(resolve_err(
            decl.ctor.line,
            decl.ctor.column,
            format!("`{}` is missing argument {}", decl.ctor, i + 1),
        )),
    }
}

/// Extracts argument `i` as a `[bits]` vector.
fn bits_arg(decl: &ConstraintDecl, i: usize) -> Result<Vec<bool>, LangError> {
    match decl.args.get(i) {
        Some(Arg::Bits(bits, _, _)) => Ok(bits.clone()),
        Some(other) => {
            let (l, c) = other.position();
            Err(resolve_err(
                l,
                c,
                format!(
                    "`{}` expects a `[bits]` vector as argument {}, found a {}",
                    decl.ctor,
                    i + 1,
                    other.kind()
                ),
            ))
        }
        None => Err(resolve_err(
            decl.ctor.line,
            decl.ctor.column,
            format!("`{}` is missing argument {}", decl.ctor, i + 1),
        )),
    }
}

fn arity(decl: &ConstraintDecl, expected: &str, ok: bool) -> Result<(), LangError> {
    if ok {
        Ok(())
    } else {
        Err(resolve_err(
            decl.ctor.line,
            decl.ctor.column,
            format!(
                "`{}` expects {expected}, found {} argument(s)",
                decl.ctor,
                decl.args.len()
            ),
        ))
    }
}

/// Builds one of the built-in CCSL relations/expressions, or returns
/// `Ok(None)` when the constructor name is not a built-in (the caller
/// then searches the embedded libraries).
#[allow(clippy::too_many_lines)] // one arm per constructor, all trivial
fn build_builtin(
    decl: &ConstraintDecl,
    universe: &Universe,
) -> Result<Option<Box<dyn Constraint>>, LangError> {
    let name = &decl.name.text;
    let n = decl.args.len();
    let c: Box<dyn Constraint> = match decl.ctor.text.as_str() {
        "subclock" => {
            arity(decl, "(sub, sup)", n == 2)?;
            Box::new(SubClock::new(
                name,
                event_arg(decl, 0, universe)?,
                event_arg(decl, 1, universe)?,
            ))
        }
        "exclusion" => {
            arity(decl, "at least two events", n >= 2)?;
            let events: Vec<EventId> = (0..n)
                .map(|i| event_arg(decl, i, universe))
                .collect::<Result<_, _>>()?;
            Box::new(Exclusion::new(name, events))
        }
        "coincidence" => {
            arity(decl, "(left, right)", n == 2)?;
            Box::new(Coincidence::new(
                name,
                event_arg(decl, 0, universe)?,
                event_arg(decl, 1, universe)?,
            ))
        }
        "precedes" | "weak_precedes" => {
            arity(
                decl,
                "(cause, effect) or (cause, effect, bound)",
                n == 2 || n == 3,
            )?;
            let cause = event_arg(decl, 0, universe)?;
            let effect = event_arg(decl, 1, universe)?;
            let mut p = if decl.ctor.text == "precedes" {
                Precedence::strict(name, cause, effect)
            } else {
                Precedence::weak(name, cause, effect)
            };
            if n == 3 {
                let bound = int_arg(decl, 2, 1, i64::MAX)?;
                p = p.with_bound(bound as u64);
            }
            Box::new(p)
        }
        "alternates" => {
            arity(decl, "(first, second)", n == 2)?;
            Box::new(Alternation::new(
                name,
                event_arg(decl, 0, universe)?,
                event_arg(decl, 1, universe)?,
            ))
        }
        "union" => {
            arity(decl, "(result, operand, …)", n >= 2)?;
            let result = event_arg(decl, 0, universe)?;
            let operands: Vec<EventId> = (1..n)
                .map(|i| event_arg(decl, i, universe))
                .collect::<Result<_, _>>()?;
            Box::new(Union::new(name, result, operands))
        }
        "intersection" => {
            arity(decl, "(result, operand, …)", n >= 2)?;
            let result = event_arg(decl, 0, universe)?;
            let operands: Vec<EventId> = (1..n)
                .map(|i| event_arg(decl, i, universe))
                .collect::<Result<_, _>>()?;
            Box::new(Intersection::new(name, result, operands))
        }
        "delay" => {
            arity(decl, "(result, base, delay)", n == 3)?;
            Box::new(Delay::new(
                name,
                event_arg(decl, 0, universe)?,
                event_arg(decl, 1, universe)?,
                int_arg(decl, 2, 0, i64::MAX)? as u64,
            ))
        }
        "periodic" => {
            arity(decl, "(result, base, offset, period)", n == 4)?;
            Box::new(Periodic::new(
                name,
                event_arg(decl, 0, universe)?,
                event_arg(decl, 1, universe)?,
                int_arg(decl, 2, 0, i64::MAX)? as u64,
                int_arg(decl, 3, 1, i64::MAX)? as u64,
            ))
        }
        "sampled" => {
            arity(decl, "(result, trigger, base)", n == 3)?;
            Box::new(SampledOn::new(
                name,
                event_arg(decl, 0, universe)?,
                event_arg(decl, 1, universe)?,
                event_arg(decl, 2, universe)?,
            ))
        }
        "filtered" => {
            arity(decl, "(result, base, [head], [cycle])", n == 4)?;
            let result = event_arg(decl, 0, universe)?;
            let base = event_arg(decl, 1, universe)?;
            let head = bits_arg(decl, 2)?;
            let cycle = bits_arg(decl, 3)?;
            if cycle.is_empty() {
                let (l, c) = decl.args[3].position();
                return Err(resolve_err(
                    l,
                    c,
                    "the periodic part of `filtered` must be non-empty".to_owned(),
                ));
            }
            Box::new(FilteredBy::new(name, result, base, head, cycle))
        }
        _ => return Ok(None),
    };
    Ok(Some(c))
}

/// Instantiates a constraint declared in one of the embedded automata
/// libraries, binding arguments positionally against the declaration's
/// typed parameter list.
fn build_automaton(
    decl: &ConstraintDecl,
    library: &RelationLibrary,
    universe: &Universe,
) -> Result<Box<dyn Constraint>, LangError> {
    let declaration = library
        .declaration(&decl.ctor.text)
        .expect("caller checked the declaration exists")
        .clone();
    let params = declaration.params().to_vec();
    arity(
        decl,
        &format!("{} argument(s)", params.len()),
        decl.args.len() == params.len(),
    )?;
    let mut builder = library
        .instantiate(&decl.ctor.text, &decl.name.text)
        .map_err(|e| resolve_err(decl.ctor.line, decl.ctor.column, e.to_string()))?;
    for (i, (param, kind)) in params.iter().enumerate() {
        builder = match kind {
            ParamKind::Event => builder.bind_event(param, event_arg(decl, i, universe)?),
            ParamKind::Int => builder.bind_int(param, int_arg(decl, i, i64::MIN, i64::MAX)?),
        };
    }
    let instance = builder
        .finish()
        .map_err(|e| resolve_err(decl.name.line, decl.name.column, e.to_string()))?;
    Ok(Box::new(instance))
}

impl PredAst {
    /// Resolves event names against `universe`, producing the kernel
    /// predicate.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Resolve`] (with the name's span) on
    /// unknown events.
    pub fn resolve(&self, universe: &Universe) -> Result<StepPred, LangError> {
        Ok(match self {
            PredAst::Fired(n) => StepPred::fired(lookup_event(universe, n)?),
            PredAst::Excludes(a, b) => {
                StepPred::excludes(lookup_event(universe, a)?, lookup_event(universe, b)?)
            }
            PredAst::Implies(a, b) => {
                StepPred::implies(lookup_event(universe, a)?, lookup_event(universe, b)?)
            }
            PredAst::And(a, b) => StepPred::and(a.resolve(universe)?, b.resolve(universe)?),
            PredAst::Or(a, b) => StepPred::or(a.resolve(universe)?, b.resolve(universe)?),
            PredAst::Not(p) => StepPred::negate(p.resolve(universe)?),
        })
    }
}

impl PropAst {
    /// Resolves event names against `universe`, producing the verify
    /// layer's property.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Resolve`] (with the name's span) on
    /// unknown events.
    pub fn resolve(&self, universe: &Universe) -> Result<Prop, LangError> {
        Ok(match self {
            PropAst::Always(p) => Prop::Always(p.resolve(universe)?),
            PropAst::Never(p) => Prop::Never(p.resolve(universe)?),
            PropAst::EventuallyWithin(p, k) => Prop::EventuallyWithin(p.resolve(universe)?, *k),
            PropAst::UntilWithin(p, q, k) => {
                Prop::UntilWithin(p.resolve(universe)?, q.resolve(universe)?, *k)
            }
            PropAst::ReleaseWithin(p, q, k) => {
                Prop::ReleaseWithin(p.resolve(universe)?, q.resolve(universe)?, *k)
            }
            PropAst::DeadlockFree => Prop::DeadlockFree,
        })
    }
}

/// Compiles a parsed specification into an [`Arc<Program>`] plus the
/// asserted [`Prop`]s, through the existing ccsl/automata/engine
/// layers.
///
/// # Errors
///
/// Returns [`LangError::Resolve`] on duplicate event or constraint
/// names, unknown events, unknown constructors and ill-typed or
/// ill-arity instantiations — each pointing at the offending token.
pub fn compile(ast: &SpecAst) -> Result<Compiled, LangError> {
    // pass 1: the universe, in declaration order
    let mut universe = Universe::new();
    for item in &ast.items {
        if let Item::Events(names) = item {
            for name in names {
                if universe.lookup(&name.text).is_some() {
                    return Err(resolve_err(
                        name.line,
                        name.column,
                        format!("event `{}` is declared twice", name.text),
                    ));
                }
                universe.event(&name.text);
            }
        }
    }

    // pass 2: constraints and properties, in source order; libraries
    // accumulate as they appear (a constructor may only reference a
    // library block that precedes it, mirroring reading order)
    let mut spec = Specification::new(&ast.name, universe.clone());
    let mut libraries: Vec<&RelationLibrary> = Vec::new();
    let mut props = Vec::new();
    let mut constraint_names: Vec<&str> = Vec::new();
    for item in &ast.items {
        match item {
            Item::Events(_) => {}
            Item::Library(block) => libraries.push(&block.library),
            Item::Constraint(decl) => {
                if constraint_names.contains(&decl.name.text.as_str()) {
                    return Err(resolve_err(
                        decl.name.line,
                        decl.name.column,
                        format!("constraint `{}` is declared twice", decl.name.text),
                    ));
                }
                constraint_names.push(&decl.name.text);
                let constraint = match build_builtin(decl, &universe)? {
                    Some(c) => c,
                    None => {
                        let library = libraries
                            .iter()
                            .rev()
                            .find(|l| l.declaration(&decl.ctor.text).is_some());
                        match library {
                            Some(library) => build_automaton(decl, library, &universe)?,
                            None => {
                                return Err(resolve_err(
                                    decl.ctor.line,
                                    decl.ctor.column,
                                    format!(
                                        "unknown constructor `{}` (not a built-in relation or \
                                         expression, and no preceding library declares it)",
                                        decl.ctor.text
                                    ),
                                ))
                            }
                        }
                    }
                };
                spec.add_constraint(constraint);
            }
            Item::Assert(prop) => props.push(prop.resolve(&universe)?),
        }
    }

    Ok(Compiled {
        name: ast.name.clone(),
        program: Program::new(spec),
        props,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_str, parse_spec};
    use moccml_engine::ExploreOptions;
    use moccml_verify::{check_props, PropStatus};

    const PIPELINE: &str = r#"
spec pipeline {
  events w1, r1, w2, r2;

  library SDF {
    constraint PlaceConstraint(write: event, read: event,
                               pushRate: int, popRate: int,
                               itsDelay: int, itsCapacity: int)
    automaton PlaceConstraintDef implements PlaceConstraint {
      var size: int = itsDelay;
      initial state S0;
      final state S0;
      from S0 to S0 when {write} forbid {read}
        guard [size <= itsCapacity - pushRate] do size += pushRate;
      from S0 to S0 when {read} forbid {write}
        guard [size >= popRate] do size -= popRate;
    }
  }

  constraint p1 = PlaceConstraint(w1, r1, 1, 1, 0, 1);
  constraint chain = coincidence(r1, w2);
  constraint p2 = PlaceConstraint(w2, r2, 1, 1, 0, 1);

  assert deadlock-free;
  assert never((r1 && w1));
  assert eventually<=4(r2);
}
"#;

    /// The programmatic transcription of [`PIPELINE`], built through
    /// the same layers a Rust user would use.
    fn programmatic() -> Compiled {
        let mut u = Universe::new();
        let (w1, r1) = (u.event("w1"), u.event("r1"));
        let (w2, r2) = (u.event("w2"), u.event("r2"));
        let lib = moccml_automata::parse_library(
            r#"library SDF {
              constraint PlaceConstraint(write: event, read: event,
                                         pushRate: int, popRate: int,
                                         itsDelay: int, itsCapacity: int)
              automaton PlaceConstraintDef implements PlaceConstraint {
                var size: int = itsDelay;
                initial state S0;
                final state S0;
                from S0 to S0 when {write} forbid {read}
                  guard [size <= itsCapacity - pushRate] do size += pushRate;
                from S0 to S0 when {read} forbid {write}
                  guard [size >= popRate] do size -= popRate;
              }
            }"#,
        )
        .expect("parses");
        let place = |name: &str, w, r| {
            lib.instantiate("PlaceConstraint", name)
                .expect("declared")
                .bind_event("write", w)
                .bind_event("read", r)
                .bind_int("pushRate", 1)
                .bind_int("popRate", 1)
                .bind_int("itsDelay", 0)
                .bind_int("itsCapacity", 1)
                .finish()
                .expect("complete binding")
        };
        let mut spec = Specification::new("pipeline", u.clone());
        spec.add_constraint(Box::new(place("p1", w1, r1)));
        spec.add_constraint(Box::new(Coincidence::new("chain", r1, w2)));
        spec.add_constraint(Box::new(place("p2", w2, r2)));
        let props = vec![
            Prop::DeadlockFree,
            Prop::Never(StepPred::and(StepPred::fired(r1), StepPred::fired(w1))),
            Prop::EventuallyWithin(StepPred::fired(r2), 4),
        ];
        Compiled {
            name: "pipeline".to_owned(),
            program: Program::new(spec),
            props,
        }
    }

    #[test]
    fn textual_and_programmatic_specs_agree_byte_for_byte() {
        let textual = compile_str(PIPELINE).expect("compiles");
        let reference = programmatic();
        // same universe, same interned events, same constraint states
        assert_eq!(textual.universe(), reference.universe());
        assert_eq!(
            textual.program.template_key(),
            reference.program.template_key()
        );
        assert_eq!(textual.props, reference.props);
        // same explored space and the same verdicts, counterexamples
        // included
        let options = ExploreOptions::default();
        assert_eq!(
            textual.program.explore(&options),
            reference.program.explore(&options)
        );
        let report_t = check_props(&textual.program, &textual.props, &options);
        let report_r = check_props(&reference.program, &reference.props, &options);
        assert_eq!(report_t, report_r);
        // the liveness bound is violated (the pipeline needs 2 writes
        // before r2 can fire twice... the witness replays either way)
        for status in &report_t.statuses {
            if let PropStatus::Violated(ce) = status {
                assert!(ce.replays_on(&textual.program));
                assert!(ce.replays_on(&reference.program));
            }
        }
    }

    #[test]
    fn print_parse_round_trip_preserves_the_ast() {
        let ast = parse_spec(PIPELINE).expect("parses");
        let printed = ast.to_text();
        let reparsed = parse_spec(&printed).expect("printed form parses");
        assert_eq!(ast, reparsed, "\n--- printed ---\n{printed}");
        // and the canonical form is a fixpoint
        assert_eq!(printed, reparsed.to_text());
    }

    #[test]
    fn compiled_round_trip_produces_the_same_program() {
        let direct = compile_str(PIPELINE).expect("compiles");
        let printed = parse_spec(PIPELINE).expect("parses").to_text();
        let reprinted = compile_str(&printed).expect("printed form compiles");
        assert_eq!(direct.universe(), reprinted.universe());
        assert_eq!(
            direct.program.template_key(),
            reprinted.program.template_key()
        );
        assert_eq!(direct.props, reprinted.props);
    }

    #[test]
    fn resolve_errors_point_at_the_offending_token() {
        for (src, line, column, fragment) in [
            // unknown event in a constraint
            (
                "spec x {\n  events a;\n  constraint c = subclock(a, ghost);\n}",
                3,
                30,
                "unknown event `ghost`",
            ),
            // unknown event in a property
            (
                "spec x {\n  events a;\n  assert never(ghost);\n}",
                3,
                16,
                "unknown event `ghost`",
            ),
            // unknown constructor
            (
                "spec x {\n  events a, b;\n  constraint c = frobnicates(a, b);\n}",
                3,
                18,
                "unknown constructor `frobnicates`",
            ),
            // arity error at the ctor
            (
                "spec x {\n  events a, b;\n  constraint c = subclock(a);\n}",
                3,
                18,
                "expects (sub, sup)",
            ),
            // kind error at the argument
            (
                "spec x {\n  events a, b;\n  constraint c = subclock(a, 3);\n}",
                3,
                30,
                "expects an event",
            ),
            // zero bound rejected before the ccsl layer could panic
            (
                "spec x {\n  events a, b;\n  constraint c = precedes(a, b, 0);\n}",
                3,
                33,
                "must be in 1..=",
            ),
            // duplicate event declaration
            (
                "spec x {\n  events a, a;\n}",
                2,
                13,
                "declared twice",
            ),
            // duplicate constraint name
            (
                "spec x {\n  events a, b;\n  constraint c = subclock(a, b);\n  constraint c = subclock(b, a);\n}",
                4,
                14,
                "declared twice",
            ),
        ] {
            let err = compile_str(src).expect_err(src);
            assert_eq!(err.position(), (line, column), "{src}\n{err}");
            assert!(err.to_string().contains(fragment), "{src}\n{err}");
        }
    }

    #[test]
    fn automata_binding_errors_carry_spans() {
        // an int where the declaration wants an event
        let src = "spec x {\n  events a, b;\n  library L {\n    constraint C(x: event, n: int)\n    automaton D implements C {\n      initial final state S;\n      from S to S when {x} guard [n > 0];\n    }\n  }\n  constraint c = C(5, 1);\n}";
        let err = compile_str(src).expect_err("int for event");
        assert_eq!(err.position(), (10, 20), "{err}");
        // wrong arity against the declaration
        let src = src.replace("C(5, 1)", "C(a)");
        let err = compile_str(&src).expect_err("missing int");
        assert!(err.to_string().contains("expects 2 argument(s)"), "{err}");
    }

    #[test]
    fn constructors_see_only_preceding_libraries() {
        let src = "spec x {\n  events a;\n  constraint c = C(a);\n  library L {\n    constraint C(x: event)\n    automaton D implements C {\n      initial final state S;\n      from S to S when {x};\n    }\n  }\n}";
        let err = compile_str(src).expect_err("library comes later");
        assert!(err.to_string().contains("unknown constructor `C`"), "{err}");
    }

    #[test]
    fn builtin_expressions_compile_and_run() {
        let compiled = compile_str(
            "spec exprs {\n  events a, b, r, s;\n\
             constraint u = union(r, a, b);\n\
             constraint d = delay(s, r, 1);\n\
             constraint f = filtered(b, a, [0], [1]);\n}",
        )
        .expect("compiles");
        let space = compiled
            .program
            .explore(&ExploreOptions::default().with_max_states(100));
        assert!(space.state_count() > 1);
    }
}
