//! The abstract syntax of a `.mcc` specification.
//!
//! Every node that names something carries its 1-based `line:column`
//! span so resolution errors point back into the source. Spans are
//! **excluded from equality**: `PartialEq` compares structure only,
//! which is what makes the parse → print → parse round-trip property
//! (`moccml_lang::parse_spec(&ast.to_text())? == ast`) meaningful —
//! printing obviously moves every token.

use moccml_automata::RelationLibrary;
use std::fmt;

/// A source-positioned name (an event reference, a constructor, …).
#[derive(Debug, Clone, Eq)]
pub struct Name {
    /// The identifier text.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub column: usize,
}

impl Name {
    /// A name with a span.
    #[must_use]
    pub fn new(text: &str, line: usize, column: usize) -> Self {
        Name {
            text: text.to_owned(),
            line,
            column,
        }
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.text == other.text
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// One argument of a constraint instantiation.
#[derive(Debug, Clone, Eq)]
pub enum Arg {
    /// An event reference.
    Event(Name),
    /// An integer constant (bounds, delays, rates, …).
    Int(i64, usize, usize),
    /// A `[1, 0, …]` bit vector — the head/cycle words of `filtered`.
    Bits(Vec<bool>, usize, usize),
}

impl Arg {
    /// The `(line, column)` span of the argument.
    #[must_use]
    pub fn position(&self) -> (usize, usize) {
        match self {
            Arg::Event(n) => (n.line, n.column),
            Arg::Int(_, l, c) | Arg::Bits(_, l, c) => (*l, *c),
        }
    }

    /// A short kind label for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Arg::Event(_) => "event",
            Arg::Int(..) => "int",
            Arg::Bits(..) => "bit vector",
        }
    }
}

// spans are not part of the value
impl PartialEq for Arg {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Arg::Event(a), Arg::Event(b)) => a == b,
            (Arg::Int(a, _, _), Arg::Int(b, _, _)) => a == b,
            (Arg::Bits(a, _, _), Arg::Bits(b, _, _)) => a == b,
            _ => false,
        }
    }
}

/// A named constraint instantiation:
/// `constraint <name> = <ctor>(<args>);`.
///
/// The constructor is either one of the built-in CCSL
/// relations/expressions (see the grammar in the
/// [crate docs](crate)) or a constraint declaration from an embedded
/// `library { … }` block, bound positionally.
#[derive(Debug, Clone, Eq)]
pub struct ConstraintDecl {
    /// Instance name (diagnostics name it on conformance violations).
    pub name: Name,
    /// Constructor name.
    pub ctor: Name,
    /// Positional arguments.
    pub args: Vec<Arg>,
}

impl PartialEq for ConstraintDecl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.ctor == other.ctor && self.args == other.args
    }
}

/// A step predicate over named events — the textual mirror of
/// [`StepPred`](moccml_kernel::StepPred).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredAst {
    /// The event occurs in the step.
    Fired(Name),
    /// `a # b`: the two events never coincide within the step.
    Excludes(Name, Name),
    /// `a => b`: if `a` occurs in the step, so does `b`.
    Implies(Name, Name),
    /// `(l && r)`.
    And(Box<PredAst>, Box<PredAst>),
    /// `(l || r)`.
    Or(Box<PredAst>, Box<PredAst>),
    /// `!p`.
    Not(Box<PredAst>),
}

/// A temporal property over named events — the textual mirror of
/// [`Prop`](moccml_verify::Prop). The concrete syntax is exactly what
/// [`Prop::display`](moccml_verify::Prop::display) prints, so
/// displayed properties parse back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropAst {
    /// `always(p)`.
    Always(PredAst),
    /// `never(p)`.
    Never(PredAst),
    /// `eventually<=k(p)`.
    EventuallyWithin(PredAst, usize),
    /// `until<=k(p, q)`.
    UntilWithin(PredAst, PredAst, usize),
    /// `release<=k(p, q)`.
    ReleaseWithin(PredAst, PredAst, usize),
    /// `deadlock-free`.
    DeadlockFree,
}

/// An embedded constraint-automata library block, parsed by
/// [`moccml_automata::parse_library`] with error positions remapped
/// into the surrounding `.mcc` source.
#[derive(Debug, Clone)]
pub struct LibraryBlock {
    /// The parsed library.
    pub library: RelationLibrary,
    /// 1-based line of the `library` keyword.
    pub line: usize,
    /// 1-based column of the `library` keyword.
    pub column: usize,
}

impl PartialEq for LibraryBlock {
    fn eq(&self, other: &Self) -> bool {
        // RelationLibrary itself does not implement PartialEq (its
        // definitions sit behind Arcs); compare the structure
        self.library.name() == other.library.name()
            && self.library.declarations() == other.library.declarations()
            && self.library.definitions().len() == other.library.definitions().len()
            && self
                .library
                .definitions()
                .iter()
                .zip(other.library.definitions())
                .all(|(a, b)| a.as_ref() == b.as_ref())
    }
}

impl Eq for LibraryBlock {}

/// One top-level item of a specification, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `events a, b, c;` — declares events in universe order.
    Events(Vec<Name>),
    /// An embedded automata library.
    Library(LibraryBlock),
    /// A constraint instantiation.
    Constraint(ConstraintDecl),
    /// `assert <prop>;` — a property to verify.
    Assert(PropAst),
}

/// A parsed `.mcc` specification: `spec <name> { <items> }`.
///
/// Obtained from [`parse_spec`](crate::parse_spec); printed back with
/// [`to_text`](SpecAst::to_text) (canonical form, reparses to an equal
/// AST); compiled with [`compile`](crate::compile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecAst {
    /// The specification name.
    pub name: String,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl SpecAst {
    /// All declared event names, in declaration (= universe) order.
    #[must_use]
    pub fn event_names(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter_map(|i| match i {
                Item::Events(names) => Some(names.iter().map(|n| n.text.as_str())),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// The constraint declarations, in source order.
    #[must_use]
    pub fn constraints(&self) -> Vec<&ConstraintDecl> {
        self.items
            .iter()
            .filter_map(|i| match i {
                Item::Constraint(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    /// The asserted properties, in source order.
    #[must_use]
    pub fn props(&self) -> Vec<&PropAst> {
        self.items
            .iter()
            .filter_map(|i| match i {
                Item::Assert(p) => Some(p),
                _ => None,
            })
            .collect()
    }

    /// The embedded library blocks, in source order.
    #[must_use]
    pub fn libraries(&self) -> Vec<&LibraryBlock> {
        self.items
            .iter()
            .filter_map(|i| match i {
                Item::Library(l) => Some(l),
                _ => None,
            })
            .collect()
    }
}
