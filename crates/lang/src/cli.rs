//! The `moccml` command-line interface: drive a textual `.mcc`
//! specification end to end — parse, compile, explore, verify —
//! without writing any Rust.
//!
//! ```text
//! moccml check       <spec.mcc> [--workers N] [--max-states N] [--max-depth N]
//! moccml explore     <spec.mcc> [--workers N] [--max-states N] [--max-depth N] [--stats]
//! moccml simulate    <spec.mcc> [--steps N] [--policy P] [--seed N]
//! moccml conformance <spec.mcc> <trace.txt>
//! ```
//!
//! `check` verifies every `assert`ed property with
//! [`check_props`] (deterministic early
//! stop, identical for every `--workers` count) and reports violations
//! with a replayable witness schedule *and* its locally minimal form
//! (see [`minimize_witness`]).
//! `conformance` replays a recorded schedule in the plain-text
//! [`Schedule::parse_lines`] format. Exit codes: `0` success / all
//! properties hold, `1` a property or the trace is violated (or the
//! simulation deadlocked), `2` usage, I/O or compilation errors.
//!
//! Everything the subcommands print is derived from the same values
//! the programmatic API returns, so a `.mcc` spec and its Rust
//! transcription produce byte-identical verdicts — the golden contract
//! `crates/lang/tests/cli_golden.rs` pins.

use crate::compile::Compiled;
use crate::error::LangError;
use moccml_engine::{
    Engine, ExploreOptions, Lexicographic, MaxParallel, MinSerial, Policy, Random, SafeMaxParallel,
};
use moccml_kernel::{Schedule, Universe};
use moccml_obs::Recorder;
use moccml_verify::{check_props, conformance, minimize_witness, PropStatus, Verdict};
use std::fmt::Write as _;

/// Exit code: success (all properties hold / trace conforms).
pub const EXIT_OK: i32 = 0;
/// Exit code: a property, trace or simulation was violated.
pub const EXIT_VIOLATED: i32 = 1;
/// Exit code: usage, I/O, parse or compilation error.
pub const EXIT_ERROR: i32 = 2;

const USAGE: &str = "\
usage: moccml <command> <spec.mcc> [options]

commands:
  check        verify every `assert`ed property of the spec
  explore      build the scheduling state-space and print its metrics
  simulate     run a simulation and print the schedule
  conformance  replay a recorded schedule: moccml conformance <spec.mcc> <trace>
  lint         static analysis: moccml lint <spec.mcc> [--deny warnings]
               [--format json]  (provided by moccml-analyze)

options:
  --workers N     worker threads for exploration (default: all cores;
                  results are identical for every value)
  --max-states N  exploration bound (default 100000)
  --max-depth N   BFS depth bound (default: unbounded)
  --stats         print throughput after the verdicts: states/sec and
                  elapsed for check/conformance, plus peak frontier and
                  interner occupancy for explore
  --steps N       simulation steps (default 20)
  --policy P      simulation policy: lexicographic | random |
                  max-parallel | min-serial | safe (default lexicographic)
  --seed N        seed for the random policy (default 42)
";

/// Runs the CLI on `args` (without the program name), writing all
/// output to `out`. Returns the process exit code.
///
/// Factored out of `main` so integration tests can drive the CLI
/// in-process and golden-compare its output.
pub fn run(args: &[String], out: &mut String) -> i32 {
    run_with(args, out, &Recorder::disabled())
}

/// [`run`] with an observability [`Recorder`]: when enabled, the
/// subcommands open `parse`/`compile` spans around the frontend,
/// phase spans around their own work (`check` and `explore` come from
/// the verifier and the explorer, `minimize`, `simulate` and
/// `conformance` from here), and the explorer maintains its counters.
/// The printed output is byte-identical either way — recording is
/// observationally inert. This is what `moccml --trace <file>` rides
/// on.
pub fn run_with(args: &[String], out: &mut String, recorder: &Recorder) -> i32 {
    match try_run(args, out, recorder) {
        Ok(code) => code,
        Err(message) => {
            let _ = writeln!(out, "error: {message}");
            EXIT_ERROR
        }
    }
}

fn try_run(args: &[String], out: &mut String, recorder: &Recorder) -> Result<i32, String> {
    let Some(command) = args.first() else {
        return Err(format!("missing command\n{USAGE}"));
    };
    if command == "--help" || command == "-h" || command == "help" {
        let _ = write!(out, "{USAGE}");
        return Ok(EXIT_OK);
    }
    if command == "lint" {
        // the shipped `moccml` binary (crates/analyze) resolves `lint`
        // before delegating here; reaching this arm means the frontend
        // CLI was driven directly
        return Err(
            "`lint` is provided by moccml-analyze: use the `moccml` binary or \
             `moccml_analyze::cli::run`"
                .to_owned(),
        );
    }
    let Some(spec_path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        return Err(format!("missing <spec.mcc> path\n{USAGE}"));
    };
    let source = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read `{spec_path}`: {e}"))?;
    let ast = {
        let _span = recorder.span("parse");
        crate::parse_spec(&source).map_err(|e| render_error(spec_path, &e))?
    };
    let compiled = {
        let _span = recorder.span("compile");
        crate::compile(&ast).map_err(|e| render_error(spec_path, &e))?
    };
    let rest = &args[2..];
    let options = |rest| explore_options(rest).map(|o| o.with_recorder(recorder));
    match command.as_str() {
        "check" => Ok(check(&compiled, rest, &options(rest)?, recorder, out)),
        "explore" => Ok(explore(&compiled, rest, &options(rest)?, out)),
        "simulate" => simulate(&compiled, rest, recorder, out),
        "conformance" => {
            let Some(trace_path) = rest.first().filter(|a| !a.starts_with("--")) else {
                return Err(format!("conformance needs a trace file\n{USAGE}"));
            };
            conformance_cmd(&compiled, trace_path, rest, recorder, out)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

/// `file:line:col`-style rendering of a [`LangError`].
fn render_error(path: &str, e: &LangError) -> String {
    let (line, column) = e.position();
    format!("{path}:{line}:{column}: {e}")
}

fn flag(args: &[String], name: &str) -> Result<Option<usize>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .map(Some)
            .ok_or_else(|| format!("{name} needs a non-negative integer")),
    }
}

fn explore_options(args: &[String]) -> Result<ExploreOptions, String> {
    let mut options = ExploreOptions::default();
    if let Some(n) = flag(args, "--max-states")? {
        options = options.with_max_states(n);
    }
    if let Some(n) = flag(args, "--max-depth")? {
        options = options.with_max_depth(n);
    }
    if let Some(n) = flag(args, "--workers")? {
        options = options.with_workers(n);
    }
    Ok(options)
}

/// Renders a schedule as ` ; `-separated steps of space-separated
/// event names (the single-line form of `Schedule::to_lines`).
fn render_schedule(schedule: &Schedule, universe: &Universe) -> String {
    match schedule.to_lines(universe) {
        Ok(lines) => lines.trim_end().replace('\n', " ; "),
        // names with whitespace cannot round-trip as text: fall back
        // to the raw event-id rendering
        Err(_) => schedule.to_string(),
    }
}

fn check(
    compiled: &Compiled,
    args: &[String],
    options: &ExploreOptions,
    recorder: &Recorder,
    out: &mut String,
) -> i32 {
    let universe = compiled.universe();
    if compiled.props.is_empty() {
        let _ = writeln!(
            out,
            "spec `{}`: no properties to check (add `assert …;` items)",
            compiled.name
        );
        return EXIT_OK;
    }
    let stats = args.iter().any(|a| a == "--stats");
    let mut violated = false;
    let mut total_states = 0usize;
    let mut total_elapsed = std::time::Duration::ZERO;
    // one exploration per property (the programmatic `check` call), so
    // every property is decided — and each row shows its own
    // early-stop cost
    for prop in &compiled.props {
        let monitor = moccml_engine::ExploreMonitor::new();
        let options = if stats {
            options.clone().with_monitor(&monitor)
        } else {
            options.clone()
        };
        let report = check_props(&compiled.program, std::slice::from_ref(prop), &options);
        if stats {
            let m = monitor.snapshot();
            total_states += m.states;
            total_elapsed += m.elapsed;
        }
        match &report.statuses[0] {
            PropStatus::Holds => {
                let _ = writeln!(
                    out,
                    "{:<40} holds        ({} states)",
                    prop.display(universe),
                    report.states_visited
                );
            }
            PropStatus::Violated(ce) => {
                violated = true;
                let _ = writeln!(
                    out,
                    "{:<40} VIOLATED     ({} states), witness ({} steps): {}",
                    prop.display(universe),
                    report.states_visited,
                    ce.schedule.len(),
                    render_schedule(&ce.schedule, universe)
                );
                let minimized = {
                    let _span = recorder.span("minimize");
                    minimize_witness(&compiled.program, prop, &ce.schedule)
                };
                let _ = writeln!(
                    out,
                    "{:<40} minimized ({} steps): {}",
                    "",
                    minimized.len(),
                    render_schedule(&minimized, universe)
                );
            }
            PropStatus::Undetermined => {
                let _ = writeln!(
                    out,
                    "{:<40} undetermined ({} states explored, bound hit)",
                    prop.display(universe),
                    report.states_visited
                );
            }
        }
    }
    if stats {
        let _ = writeln!(
            out,
            "throughput: {:.0} states/sec over {:.1} ms",
            throughput(total_states, total_elapsed),
            total_elapsed.as_secs_f64() * 1_000.0,
        );
    }
    if violated {
        EXIT_VIOLATED
    } else {
        EXIT_OK
    }
}

/// States/second, zero-safe: an instantaneous run reports 0 rather
/// than dividing by zero.
fn throughput(states: usize, elapsed: std::time::Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        states as f64 / secs
    } else {
        0.0
    }
}

fn explore(
    compiled: &Compiled,
    args: &[String],
    options: &ExploreOptions,
    out: &mut String,
) -> i32 {
    let stats = args.iter().any(|a| a == "--stats");
    let monitor = moccml_engine::ExploreMonitor::new();
    let options = if stats {
        options.clone().with_monitor(&monitor)
    } else {
        options.clone()
    };
    let space = compiled.program.explore(&options);
    let _ = writeln!(out, "spec `{}`: {}", compiled.name, space.stats());
    let _ = writeln!(
        out,
        "schedules of length 1/2/4/8: {}/{}/{}/{}",
        space.count_schedules(1),
        space.count_schedules(2),
        space.count_schedules(4),
        space.count_schedules(8)
    );
    if stats {
        let m = monitor.snapshot();
        let _ = writeln!(
            out,
            "throughput: {:.0} states/sec over {:.1} ms; peak frontier {}; \
             interner: {} keys, occupancy {:.3}",
            m.states_per_sec(),
            m.elapsed.as_secs_f64() * 1_000.0,
            m.peak_frontier,
            m.interned,
            m.interner_occupancy(),
        );
    }
    EXIT_OK
}

fn boxed_policy(name: &str, seed: u64) -> Result<Box<dyn Policy>, String> {
    Ok(match name {
        "lexicographic" => Box::new(Lexicographic),
        "random" => Box::new(Random::new(seed)),
        "max-parallel" => Box::new(MaxParallel),
        "min-serial" => Box::new(MinSerial),
        "safe" => Box::new(SafeMaxParallel),
        other => {
            return Err(format!(
                "unknown policy `{other}` (expected lexicographic, random, \
                 max-parallel, min-serial or safe)"
            ))
        }
    })
}

fn simulate(
    compiled: &Compiled,
    args: &[String],
    recorder: &Recorder,
    out: &mut String,
) -> Result<i32, String> {
    let steps = flag(args, "--steps")?.unwrap_or(20);
    let seed = flag(args, "--seed")?.unwrap_or(42) as u64;
    let policy_name = match args.iter().position(|a| a == "--policy") {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .ok_or("--policy needs a policy name")?,
        None => "lexicographic".to_owned(),
    };
    let policy = boxed_policy(&policy_name, seed)?;
    let universe = compiled.universe().clone();
    // reuse the already compiled program (and its formula memo)
    // instead of recompiling the specification into a second one
    let mut engine = Engine::from_program(&compiled.program)
        .policy_boxed(policy)
        .build();
    let report = {
        let _span = recorder.span("simulate");
        engine.run(steps)
    };
    let _ = writeln!(
        out,
        "spec `{}`, policy {policy_name}: {} step(s){}",
        compiled.name,
        report.steps_taken,
        if report.deadlocked {
            ", DEADLOCKED"
        } else {
            ""
        }
    );
    let diagram = report.schedule.render_timing_diagram(&universe);
    if !diagram.is_empty() {
        let _ = writeln!(out, "{diagram}");
    }
    let _ = writeln!(
        out,
        "schedule: {}",
        render_schedule(&report.schedule, &universe)
    );
    Ok(if report.deadlocked {
        EXIT_VIOLATED
    } else {
        EXIT_OK
    })
}

fn conformance_cmd(
    compiled: &Compiled,
    trace_path: &str,
    args: &[String],
    recorder: &Recorder,
    out: &mut String,
) -> Result<i32, String> {
    let text = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read `{trace_path}`: {e}"))?;
    let universe = compiled.universe();
    let schedule =
        Schedule::parse_lines(&text, universe).map_err(|e| format!("{trace_path}: {e}"))?;
    let stats = args.iter().any(|a| a == "--stats");
    let started = std::time::Instant::now();
    let verdict = {
        let _span = recorder.span("conformance");
        conformance(&compiled.program, &schedule)
    };
    let elapsed = started.elapsed();
    let code = match verdict {
        Verdict::Conforms => {
            let _ = writeln!(
                out,
                "trace conforms ({} steps replay cleanly)",
                schedule.len()
            );
            EXIT_OK
        }
        Verdict::Violation { step, violated } => {
            let _ = writeln!(
                out,
                "trace VIOLATES at step {step}: constraints {violated:?}"
            );
            EXIT_VIOLATED
        }
    };
    if stats {
        // one replayed step per schedule entry — the conformance
        // analogue of a visited state
        let _ = writeln!(
            out,
            "throughput: {:.0} states/sec over {:.1} ms",
            throughput(schedule.len(), elapsed),
            elapsed.as_secs_f64() * 1_000.0,
        );
    }
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("moccml-cli-test-{name}"));
        std::fs::write(&path, content).expect("temp file writes");
        path
    }

    const ALT: &str = "spec alt {\n  events a, b;\n  constraint alt = alternates(a, b);\n  assert never((a && b));\n  assert never(b);\n}\n";

    #[test]
    fn check_reports_verdicts_and_exit_codes() {
        let path = write_temp("alt.mcc", ALT);
        let args: Vec<String> = ["check", path.to_str().expect("utf8 path")]
            .iter()
            .map(ToString::to_string)
            .collect();
        let mut out = String::new();
        let code = run(&args, &mut out);
        assert_eq!(code, EXIT_VIOLATED, "never(b) is violated:\n{out}");
        assert!(out.contains("never((a && b))"));
        assert!(out.contains("holds"));
        assert!(out.contains("VIOLATED"));
        assert!(out.contains("witness (2 steps): a ; b"), "{out}");
        assert!(out.contains("minimized (2 steps): a ; b"), "{out}");
    }

    #[test]
    fn explore_and_simulate_run() {
        let path = write_temp("alt2.mcc", ALT);
        let p = path.to_str().expect("utf8 path").to_owned();
        let mut out = String::new();
        assert_eq!(
            run(
                &["explore".into(), p.clone(), "--workers".into(), "2".into()],
                &mut out
            ),
            EXIT_OK
        );
        assert!(out.contains("states=2"), "{out}");
        let mut out = String::new();
        assert_eq!(
            run(
                &["simulate".into(), p, "--steps".into(), "4".into()],
                &mut out
            ),
            EXIT_OK
        );
        assert!(out.contains("4 step(s)"), "{out}");
        assert!(out.contains("schedule: a ; b ; a ; b"), "{out}");
    }

    #[test]
    fn explore_stats_prints_throughput() {
        let path = write_temp("alt-stats.mcc", ALT);
        let p = path.to_str().expect("utf8 path").to_owned();
        let mut out = String::new();
        assert_eq!(
            run(&["explore".into(), p.clone(), "--stats".into()], &mut out),
            EXIT_OK
        );
        assert!(out.contains("throughput:"), "{out}");
        assert!(out.contains("states/sec"), "{out}");
        assert!(out.contains("peak frontier"), "{out}");
        assert!(out.contains("occupancy"), "{out}");
        // without the flag the extra line stays out
        let mut out = String::new();
        assert_eq!(run(&["explore".into(), p], &mut out), EXIT_OK);
        assert!(!out.contains("throughput:"), "{out}");
    }

    #[test]
    fn check_stats_prints_the_same_throughput_line_as_explore() {
        let path = write_temp("alt-check-stats.mcc", ALT);
        let p = path.to_str().expect("utf8 path").to_owned();
        let mut out = String::new();
        assert_eq!(
            run(&["check".into(), p.clone(), "--stats".into()], &mut out),
            EXIT_VIOLATED
        );
        assert!(out.contains("throughput:"), "{out}");
        assert!(out.contains("states/sec over"), "{out}");
        assert!(out.contains(" ms\n"), "{out}");
        // verdict lines are untouched by the flag
        assert!(out.contains("VIOLATED"), "{out}");
        let mut out = String::new();
        assert_eq!(run(&["check".into(), p], &mut out), EXIT_VIOLATED);
        assert!(!out.contains("throughput:"), "{out}");
    }

    #[test]
    fn conformance_stats_prints_throughput() {
        let spec = write_temp("alt-conf-stats.mcc", ALT);
        let good = write_temp("good-stats.trace", "a\nb\n");
        let mut out = String::new();
        assert_eq!(
            run(
                &[
                    "conformance".into(),
                    spec.to_str().expect("utf8").into(),
                    good.to_str().expect("utf8").into(),
                    "--stats".into(),
                ],
                &mut out
            ),
            EXIT_OK
        );
        assert!(out.contains("trace conforms"), "{out}");
        assert!(out.contains("throughput:"), "{out}");
        assert!(out.contains("states/sec over"), "{out}");
    }

    #[test]
    fn recorder_spans_cover_the_cli_phases() {
        let path = write_temp("alt-spans.mcc", ALT);
        let p = path.to_str().expect("utf8 path").to_owned();
        let recorder = Recorder::new();
        let mut out = String::new();
        assert_eq!(
            run_with(&["check".into(), p], &mut out, &recorder),
            EXIT_VIOLATED
        );
        let snap = recorder.snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in ["parse", "compile", "check", "explore", "minimize"] {
            assert!(
                names.contains(&expected),
                "missing span `{expected}` in {names:?}"
            );
        }
        // the recorded run prints exactly what the unrecorded one does
        let mut plain = String::new();
        let path2 = write_temp("alt-spans2.mcc", ALT);
        run(
            &["check".into(), path2.to_str().expect("utf8").into()],
            &mut plain,
        );
        assert_eq!(out, plain);
    }

    #[test]
    fn conformance_verdicts() {
        let spec = write_temp("alt3.mcc", ALT);
        let good = write_temp("good.trace", "a\nb\n");
        let bad = write_temp("bad.trace", "a\na\n");
        let s = spec.to_str().expect("utf8").to_owned();
        let mut out = String::new();
        assert_eq!(
            run(
                &[
                    "conformance".into(),
                    s.clone(),
                    good.to_str().expect("utf8").into()
                ],
                &mut out
            ),
            EXIT_OK
        );
        let mut out = String::new();
        assert_eq!(
            run(
                &["conformance".into(), s, bad.to_str().expect("utf8").into()],
                &mut out
            ),
            EXIT_VIOLATED
        );
        assert!(out.contains("step 1"), "{out}");
    }

    #[test]
    fn errors_name_file_line_and_column() {
        let path = write_temp("broken.mcc", "spec x {\n  events a b;\n}");
        let mut out = String::new();
        let code = run(
            &["check".into(), path.to_str().expect("utf8").into()],
            &mut out,
        );
        assert_eq!(code, EXIT_ERROR);
        assert!(out.contains(":2:12:"), "{out}");
    }

    #[test]
    fn usage_errors() {
        let mut out = String::new();
        assert_eq!(run(&[], &mut out), EXIT_ERROR);
        let mut out = String::new();
        assert_eq!(run(&["help".into()], &mut out), EXIT_OK);
        assert!(out.contains("usage"));
        let mut out = String::new();
        assert_eq!(
            run(&["frobnicate".into(), "x.mcc".into()], &mut out),
            EXIT_ERROR
        );
    }
}
