//! Recursive-descent parser for the `.mcc` concrete syntax.
//!
//! The grammar (line comments start with `//`):
//!
//! ```text
//! spec        := "spec" IDENT "{" item* "}"
//! item        := events | library | constraint | assert
//! events      := "events" IDENT ("," IDENT)* ";"
//! library     := "library" IDENT "{" … "}"      // moccml-automata
//!                                               // concrete syntax,
//!                                               // embedded verbatim
//! constraint  := "constraint" IDENT "=" IDENT "(" [arg ("," arg)*] ")" ";"
//! arg         := IDENT | ["-"] INT | "[" [INT ("," INT)*] "]"
//! assert      := "assert" prop ";"
//! prop        := "always" "(" pred ")"
//!              | "never" "(" pred ")"
//!              | "eventually" "<=" INT "(" pred ")"
//!              | "until" "<=" INT "(" pred "," pred ")"
//!              | "release" "<=" INT "(" pred "," pred ")"
//!              | "deadlock" "-" "free"
//! pred        := andPred ("||" andPred)*
//! andPred     := notPred ("&&" notPred)*
//! notPred     := "!" notPred | atom
//! atom        := "(" pred ")" | IDENT [("#" | "=>") IDENT]
//! ```
//!
//! `library` blocks are *not* re-parsed by this module: the parser
//! balances braces to find the end of the block, slices the raw source
//! and delegates to [`moccml_automata::parse_library`] — one grammar,
//! one implementation. Errors coming back from that parser are
//! remapped into the coordinates of the surrounding `.mcc` file.

use crate::ast::{Arg, ConstraintDecl, Item, LibraryBlock, Name, PredAst, PropAst, SpecAst};
use crate::error::LangError;
use crate::lexer::{lex, Tok, Token};
use moccml_automata::AutomataError;

pub(crate) struct Parser<'a> {
    input: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a str) -> Result<Self, LangError> {
        Ok(Parser {
            input,
            tokens: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    /// `(line, column)` of the token the parser is looking at — or of
    /// the last token when the input ended early.
    fn position(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or((1, 1), |t| (t.line, t.column))
    }

    fn err(&self, message: String) -> LangError {
        let (line, column) = self.position();
        LangError::Parse {
            line,
            column,
            message,
        }
    }

    fn describe(&self) -> String {
        match self.peek() {
            None => "end of input".to_owned(),
            Some(Tok::Ident(s)) => format!("`{s}`"),
            Some(Tok::Int(v)) => format!("`{v}`"),
            Some(Tok::Sym(s)) => format!("`{s}`"),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, sym: &'static str) -> Result<(), LangError> {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{sym}`, found {}", self.describe())))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), LangError> {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.describe())))
        }
    }

    fn expect_name(&mut self, what: &str) -> Result<Name, LangError> {
        let (line, column) = self.position();
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let name = Name::new(s, line, column);
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.err(format!("expected {what}, found {}", self.describe()))),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<i64, LangError> {
        match self.peek() {
            Some(Tok::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err(format!("expected {what}, found {}", self.describe()))),
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    // ---- specification --------------------------------------------

    pub(crate) fn spec(&mut self) -> Result<SpecAst, LangError> {
        self.expect_keyword("spec")?;
        let name = self.expect_name("a specification name")?;
        self.expect_sym("{")?;
        let mut items = Vec::new();
        loop {
            if self.eat_sym("}") {
                break;
            }
            if self.at_keyword("events") {
                items.push(self.events()?);
            } else if self.at_keyword("library") {
                items.push(self.library()?);
            } else if self.at_keyword("constraint") {
                items.push(self.constraint()?);
            } else if self.at_keyword("assert") {
                items.push(self.assert_item()?);
            } else {
                return Err(self.err(format!(
                    "expected `events`, `library`, `constraint`, `assert` or `}}`, found {}",
                    self.describe()
                )));
            }
        }
        if self.peek().is_some() {
            return Err(self.err(format!(
                "trailing input after specification: {}",
                self.describe()
            )));
        }
        Ok(SpecAst {
            name: name.text,
            items,
        })
    }

    fn events(&mut self) -> Result<Item, LangError> {
        self.expect_keyword("events")?;
        let mut names = vec![self.expect_name("an event name")?];
        while self.eat_sym(",") {
            names.push(self.expect_name("an event name")?);
        }
        self.expect_sym(";")?;
        Ok(Item::Events(names))
    }

    /// Captures an embedded `library <name> { … }` block by balancing
    /// braces over the token stream and hands the raw slice to the
    /// automata parser.
    fn library(&mut self) -> Result<Item, LangError> {
        let kw = &self.tokens[self.pos];
        let (kw_line, kw_column, kw_start) = (kw.line, kw.column, kw.start);
        self.expect_keyword("library")?;
        let _name = self.expect_name("a library name")?;
        self.expect_sym("{")?;
        let mut depth = 1usize;
        let end = loop {
            match self.bump() {
                Some(Tok::Sym("{")) => depth += 1,
                Some(Tok::Sym("}")) => {
                    depth -= 1;
                    if depth == 0 {
                        break self.tokens[self.pos - 1].end;
                    }
                }
                Some(_) => {}
                None => {
                    return Err(self.err(format!(
                        "unclosed library block opened at line {kw_line}, column {kw_column}"
                    )))
                }
            }
        };
        let source = &self.input[kw_start..end];
        let library = moccml_automata::parse_library(source)
            .map_err(|e| remap_library_error(e, kw_line, kw_column))?;
        Ok(Item::Library(LibraryBlock {
            library,
            line: kw_line,
            column: kw_column,
        }))
    }

    fn constraint(&mut self) -> Result<Item, LangError> {
        self.expect_keyword("constraint")?;
        let name = self.expect_name("a constraint name")?;
        self.expect_sym("=")?;
        let ctor = self.expect_name("a constructor name")?;
        self.expect_sym("(")?;
        let mut args = Vec::new();
        if !self.eat_sym(")") {
            loop {
                args.push(self.arg()?);
                if self.eat_sym(")") {
                    break;
                }
                self.expect_sym(",")?;
            }
        }
        self.expect_sym(";")?;
        Ok(Item::Constraint(ConstraintDecl { name, ctor, args }))
    }

    fn arg(&mut self) -> Result<Arg, LangError> {
        let (line, column) = self.position();
        match self.peek() {
            Some(Tok::Ident(_)) => Ok(Arg::Event(self.expect_name("an argument")?)),
            Some(Tok::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(Arg::Int(v, line, column))
            }
            Some(Tok::Sym("-")) => {
                self.pos += 1;
                let v = self.expect_int("an integer after `-`")?;
                Ok(Arg::Int(-v, line, column))
            }
            Some(Tok::Sym("[")) => {
                self.pos += 1;
                let mut bits = Vec::new();
                if !self.eat_sym("]") {
                    loop {
                        let (bl, bc) = self.position();
                        match self.expect_int("a bit (0 or 1)")? {
                            0 => bits.push(false),
                            1 => bits.push(true),
                            other => {
                                return Err(LangError::Parse {
                                    line: bl,
                                    column: bc,
                                    message: format!("expected a bit (0 or 1), found `{other}`"),
                                })
                            }
                        }
                        if self.eat_sym("]") {
                            break;
                        }
                        self.expect_sym(",")?;
                    }
                }
                Ok(Arg::Bits(bits, line, column))
            }
            _ => Err(self.err(format!(
                "expected an event name, an integer or a `[bits]` vector, found {}",
                self.describe()
            ))),
        }
    }

    // ---- properties -----------------------------------------------

    fn assert_item(&mut self) -> Result<Item, LangError> {
        self.expect_keyword("assert")?;
        let prop = self.prop()?;
        self.expect_sym(";")?;
        Ok(Item::Assert(prop))
    }

    /// One property, in exactly the syntax `Prop::display` emits.
    pub(crate) fn prop(&mut self) -> Result<PropAst, LangError> {
        if self.at_keyword("always") {
            self.pos += 1;
            self.expect_sym("(")?;
            let p = self.pred()?;
            self.expect_sym(")")?;
            return Ok(PropAst::Always(p));
        }
        if self.at_keyword("never") {
            self.pos += 1;
            self.expect_sym("(")?;
            let p = self.pred()?;
            self.expect_sym(")")?;
            return Ok(PropAst::Never(p));
        }
        if self.at_keyword("eventually") {
            self.pos += 1;
            self.expect_sym("<=")?;
            let (line, column) = self.position();
            let k = self.expect_int("a step bound")?;
            let k = usize::try_from(k).map_err(|_| LangError::Parse {
                line,
                column,
                message: format!("step bound `{k}` must be non-negative"),
            })?;
            self.expect_sym("(")?;
            let p = self.pred()?;
            self.expect_sym(")")?;
            return Ok(PropAst::EventuallyWithin(p, k));
        }
        if self.at_keyword("until") || self.at_keyword("release") {
            let release = self.at_keyword("release");
            self.pos += 1;
            self.expect_sym("<=")?;
            let (line, column) = self.position();
            let k = self.expect_int("a step bound")?;
            let k = usize::try_from(k).map_err(|_| LangError::Parse {
                line,
                column,
                message: format!("step bound `{k}` must be non-negative"),
            })?;
            self.expect_sym("(")?;
            let p = self.pred()?;
            self.expect_sym(",")?;
            let q = self.pred()?;
            self.expect_sym(")")?;
            return Ok(if release {
                PropAst::ReleaseWithin(p, q, k)
            } else {
                PropAst::UntilWithin(p, q, k)
            });
        }
        if self.at_keyword("deadlock") {
            self.pos += 1;
            self.expect_sym("-")?;
            self.expect_keyword("free")?;
            return Ok(PropAst::DeadlockFree);
        }
        Err(self.err(format!(
            "expected `always`, `never`, `eventually<=k`, `until<=k`, `release<=k` or \
             `deadlock-free`, found {}",
            self.describe()
        )))
    }

    /// One step predicate, in exactly the syntax `StepPred::display`
    /// emits.
    pub(crate) fn pred(&mut self) -> Result<PredAst, LangError> {
        let mut left = self.and_pred()?;
        while self.eat_sym("||") {
            let right = self.and_pred()?;
            left = PredAst::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_pred(&mut self) -> Result<PredAst, LangError> {
        let mut left = self.not_pred()?;
        while self.eat_sym("&&") {
            let right = self.not_pred()?;
            left = PredAst::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_pred(&mut self) -> Result<PredAst, LangError> {
        if self.eat_sym("!") {
            return Ok(PredAst::Not(Box::new(self.not_pred()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<PredAst, LangError> {
        if self.eat_sym("(") {
            let inner = self.pred()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        let first = self.expect_name("an event name")?;
        if self.eat_sym("#") {
            let second = self.expect_name("an event name after `#`")?;
            return Ok(PredAst::Excludes(first, second));
        }
        if self.eat_sym("=>") {
            let second = self.expect_name("an event name after `=>`")?;
            return Ok(PredAst::Implies(first, second));
        }
        Ok(PredAst::Fired(first))
    }

    /// Fails unless the whole input was consumed.
    pub(crate) fn expect_end(&mut self) -> Result<(), LangError> {
        if self.peek().is_some() {
            return Err(self.err(format!("trailing input: {}", self.describe())));
        }
        Ok(())
    }
}

/// Remaps an error from the embedded automata parser (whose positions
/// are relative to the sliced library block) into the coordinates of
/// the surrounding `.mcc` source. Syntax errors keep their precision;
/// semantic validation errors (no position of their own) point at the
/// start of the block.
fn remap_library_error(e: AutomataError, block_line: usize, block_column: usize) -> LangError {
    match e {
        AutomataError::Parse {
            line,
            column,
            message,
        } => LangError::Parse {
            // relative line 1 is the line of the `library` keyword
            // itself, so columns on it shift by the keyword's column
            line: block_line + line.saturating_sub(1),
            column: if line <= 1 {
                block_column + column.saturating_sub(1)
            } else {
                column
            },
            message,
        },
        other => LangError::Library {
            line: block_line,
            column: block_column,
            source: other,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_spec;

    const SDF_SPEC: &str = r#"
// a two-place pipeline with an embedded Fig. 3 library
spec pipeline {
  events w1, r1, w2, r2;

  library SDF {
    constraint PlaceConstraint(write: event, read: event,
                               pushRate: int, popRate: int,
                               itsDelay: int, itsCapacity: int)
    automaton PlaceConstraintDef implements PlaceConstraint {
      var size: int = itsDelay;
      initial state S0;
      final state S0;
      from S0 to S0 when {write} forbid {read}
        guard [size <= itsCapacity - pushRate] do size += pushRate;
      from S0 to S0 when {read} forbid {write}
        guard [size >= popRate] do size -= popRate;
    }
  }

  constraint p1 = PlaceConstraint(w1, r1, 1, 1, 0, 1);
  constraint p2 = PlaceConstraint(w2, r2, 1, 1, 0, 2);
  constraint chain = coincidence(r1, w2);

  assert deadlock-free;
  assert never((r1 && w1));
}
"#;

    #[test]
    fn parses_a_full_spec() {
        let ast = parse_spec(SDF_SPEC).expect("parses");
        assert_eq!(ast.name, "pipeline");
        assert_eq!(ast.event_names(), ["w1", "r1", "w2", "r2"]);
        assert_eq!(ast.constraints().len(), 3);
        assert_eq!(ast.props().len(), 2);
        let libs = ast.libraries();
        assert_eq!(libs.len(), 1);
        assert_eq!(libs[0].library.name(), "SDF");
        assert!(libs[0].library.declaration("PlaceConstraint").is_some());
        assert_eq!((libs[0].line, libs[0].column), (6, 3));
    }

    #[test]
    fn parses_every_builtin_ctor() {
        let ast = parse_spec(
            "spec all {\n  events a, b, c;\n\
             constraint s = subclock(a, b);\n\
             constraint x = exclusion(a, b, c);\n\
             constraint k = coincidence(a, b);\n\
             constraint p = precedes(a, b, 2);\n\
             constraint w = weak_precedes(a, b);\n\
             constraint l = alternates(a, b);\n\
             constraint u = union(c, a, b);\n\
             constraint i = intersection(c, a, b);\n\
             constraint d = delay(c, a, 1);\n\
             constraint e = periodic(c, a, 0, 2);\n\
             constraint m = sampled(c, a, b);\n\
             constraint f = filtered(c, a, [], [1, 0]);\n}",
        )
        .expect("parses");
        assert_eq!(ast.constraints().len(), 12);
    }

    #[test]
    fn pred_syntax_matches_steppred_display() {
        // the exact strings StepPred::display produces must parse
        for (text, expected_fragments) in [
            ("always(a)", 0usize),
            ("never((a && b))", 0),
            ("eventually<=4((a || !b))", 4),
            ("until<=3(a, b)", 0),
            ("until<=7((a && !b), (b || c))", 0),
            ("release<=2(a => b, c)", 0),
            ("release<=0(!a, b # c)", 0),
            ("always(a => b)", 0),
            ("never(!a # b)", 0),
            ("deadlock-free", 0),
        ] {
            let prop = crate::parse_prop_ast(text).expect(text);
            assert_eq!(prop.to_string(), text, "canonical form is stable");
            if let crate::ast::PropAst::EventuallyWithin(_, k) = &prop {
                assert_eq!(*k, expected_fragments);
            }
        }
    }

    #[test]
    fn not_binds_tighter_than_and_looser_than_atoms() {
        use crate::ast::PredAst;
        let prop = crate::parse_prop_ast("never(!a # b)").expect("parses");
        let crate::ast::PropAst::Never(p) = prop else {
            panic!("never");
        };
        assert!(matches!(p, PredAst::Not(inner) if matches!(*inner, PredAst::Excludes(..))));
    }

    #[test]
    fn syntax_errors_carry_line_and_column() {
        for (src, line, column) in [
            // missing `;` after events: error at `constraint`
            (
                "spec x {\n  events a\n  constraint c = subclock(a, a);\n}",
                3,
                3,
            ),
            // `=` missing
            (
                "spec x {\n  events a;\n  constraint c subclock(a, a);\n}",
                3,
                16,
            ),
            // a property typo
            ("spec x {\n  events a;\n  assert allways(a);\n}", 3, 10),
            // until with one predicate: error at the `)` where the
            // `,` was expected
            ("spec x {\n  events a;\n  assert until<=2(a);\n}", 3, 20),
            // release missing its bound: error at the `(`
            (
                "spec x {\n  events a, b;\n  assert release<=(a, b);\n}",
                3,
                19,
            ),
            // stray token at top level
            ("spec x { events a; } garbage", 1, 22),
            // a non-bit in a bit vector
            (
                "spec x {\n  events a, b;\n  constraint f = filtered(a, b, [2], [1]);\n}",
                3,
                34,
            ),
        ] {
            let err = parse_spec(src).expect_err(src);
            assert_eq!(err.position(), (line, column), "{src}\n{err}");
        }
    }

    #[test]
    fn embedded_library_syntax_errors_remap_into_spec_coordinates() {
        // the `@` sits on line 4 of the spec, column 7
        let src = "spec x {\n  events a;\n  library L {\n      @\n  }\n}";
        let err = parse_spec(src).expect_err("bad library");
        assert_eq!(err.position(), (4, 7), "{err}");
        assert!(matches!(err, LangError::Parse { .. }));

        // a block whose braces never balance is caught by the spec
        // parser with the block's own position
        let src = "spec x {\n  library L {\n    initial state S;\n";
        let err = parse_spec(src).expect_err("unclosed");
        assert!(err.to_string().contains("unclosed library block"), "{err}");
        assert!(err.to_string().contains("line 2, column 3"), "{err}");
    }

    #[test]
    fn embedded_library_semantic_errors_point_at_the_block() {
        // duplicate declaration: a *semantic* automata error with no
        // position of its own — reported at the block start
        let src = "spec x {\n  library L {\n    constraint C(a: event)\n    constraint C(a: event)\n  }\n}";
        let err = parse_spec(src).expect_err("duplicate");
        match err {
            LangError::Library { line, column, .. } => assert_eq!((line, column), (2, 3)),
            other => panic!("expected Library error, got {other}"),
        }
    }

    #[test]
    fn hostile_inputs_fail_cleanly() {
        for src in [
            "",
            "spec",
            "spec x",
            "spec x {",
            "spec x { events ; }",
            "spec x { events a, ; }",
            "spec x { constraint = subclock(a, b); }",
            "spec x { assert eventually<=(a); }",
            "spec x { assert eventually<=-1(a); }",
            "spec x { assert until<=2(a); }",
            "spec x { assert until<=(a, b); }",
            "spec x { assert until<=-1(a, b); }",
            "spec x { assert release<=2(a b); }",
            "spec x { assert release<=2(a, ); }",
            "spec x { assert until(a, b); }",
            "spec x { assert deadlock-locked; }",
            "spec x { library L }",
            "spec x { constraint c = subclock(a,); }",
            "spec { }",
            "spec x { events a; assert never(a; }",
            "spec x { events \u{1F980}; }",
        ] {
            let err = parse_spec(src).expect_err(src);
            let (line, column) = err.position();
            assert!(line >= 1 && column >= 1, "degenerate span for {src:?}");
        }
    }
}
