//! The canonical pretty-printer: `.mcc` text that reparses to an
//! equal AST (`parse_spec(&ast.to_text())? == ast` — spans excluded,
//! see [`ast`](crate::ast)).
//!
//! Predicates and properties print in exactly the format
//! [`StepPred::display`](moccml_kernel::StepPred::display) and
//! [`Prop::display`](moccml_verify::Prop::display) use, so the
//! verification layer's rendered output is itself valid `.mcc`
//! property syntax.

use crate::ast::{Arg, ConstraintDecl, Item, PredAst, PropAst, SpecAst};
use moccml_automata::library_to_text;
use std::fmt;

impl fmt::Display for PredAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredAst::Fired(n) => write!(f, "{n}"),
            PredAst::Excludes(a, b) => write!(f, "{a} # {b}"),
            PredAst::Implies(a, b) => write!(f, "{a} => {b}"),
            PredAst::And(a, b) => write!(f, "({a} && {b})"),
            PredAst::Or(a, b) => write!(f, "({a} || {b})"),
            PredAst::Not(p) => write!(f, "!{p}"),
        }
    }
}

impl fmt::Display for PropAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropAst::Always(p) => write!(f, "always({p})"),
            PropAst::Never(p) => write!(f, "never({p})"),
            PropAst::EventuallyWithin(p, k) => write!(f, "eventually<={k}({p})"),
            PropAst::UntilWithin(p, q, k) => write!(f, "until<={k}({p}, {q})"),
            PropAst::ReleaseWithin(p, q, k) => write!(f, "release<={k}({p}, {q})"),
            PropAst::DeadlockFree => write!(f, "deadlock-free"),
        }
    }
}

impl fmt::Display for Arg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arg::Event(n) => write!(f, "{n}"),
            Arg::Int(v, _, _) => write!(f, "{v}"),
            Arg::Bits(bits, _, _) => {
                let cells: Vec<&str> = bits.iter().map(|b| if *b { "1" } else { "0" }).collect();
                write!(f, "[{}]", cells.join(", "))
            }
        }
    }
}

impl fmt::Display for ConstraintDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.args.iter().map(ToString::to_string).collect();
        write!(
            f,
            "constraint {} = {}({});",
            self.name,
            self.ctor,
            args.join(", ")
        )
    }
}

impl SpecAst {
    /// Renders the specification in the canonical `.mcc` concrete
    /// syntax. Parsing the output yields an AST equal to `self`
    /// (spans excluded) — the round-trip contract the property suite
    /// pins down.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("spec {} {{\n", self.name));
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            match item {
                Item::Events(names) => {
                    let cells: Vec<&str> = names.iter().map(|n| n.text.as_str()).collect();
                    out.push_str(&format!("  events {};\n", cells.join(", ")));
                }
                Item::Library(block) => {
                    // re-indent the automata renderer's output two deep
                    for line in library_to_text(&block.library).lines() {
                        if line.is_empty() {
                            out.push('\n');
                        } else {
                            out.push_str("  ");
                            out.push_str(line);
                            out.push('\n');
                        }
                    }
                }
                Item::Constraint(c) => out.push_str(&format!("  {c}\n")),
                Item::Assert(p) => out.push_str(&format!("  assert {p};\n")),
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for SpecAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}
