//! # moccml-lang
//!
//! The textual frontend of the MoCCML reproduction: a `.mcc`
//! specification format, a property syntax, and the compiler that
//! lowers both onto the existing ccsl/automata/engine/verify layers.
//!
//! The paper presents MoCCML as a *language* for describing models of
//! concurrency; until this crate, the reproduction was only drivable
//! through Rust builder APIs. A `.mcc` file declares events,
//! instantiates CCSL relations/expressions and constraint automata
//! (embedded in the `moccml-automata` concrete syntax, parsed by the
//! same [`parse_library`](moccml_automata::parse_library)), and states
//! properties to verify — and compiles, deterministically, into the
//! same [`Program`](moccml_engine::Program) + [`Prop`]
//! values the programmatic API produces, so verdicts and
//! counterexample schedules match byte for byte. The `moccml` CLI
//! binary (`check` / `explore` / `simulate` / `conformance`) drives it
//! end to end.
//!
//! ## The `.mcc` grammar
//!
//! ```text
//! spec        := "spec" IDENT "{" item* "}"
//! item        := events | library | constraint | assert
//! events      := "events" IDENT ("," IDENT)* ";"
//! library     := "library" IDENT "{" … "}"      // moccml-automata syntax
//! constraint  := "constraint" IDENT "=" IDENT "(" [arg ("," arg)*] ")" ";"
//! arg         := IDENT | ["-"] INT | "[" [INT ("," INT)*] "]"
//! assert      := "assert" prop ";"
//! prop        := "always" "(" pred ")" | "never" "(" pred ")"
//!              | "eventually" "<=" INT "(" pred ")"
//!              | "until" "<=" INT "(" pred "," pred ")"
//!              | "release" "<=" INT "(" pred "," pred ")"
//!              | "deadlock" "-" "free"
//! pred        := andPred ("||" andPred)*
//! andPred     := notPred ("&&" notPred)*
//! notPred     := "!" notPred | "(" pred ")" | IDENT [("#" | "=>") IDENT]
//! ```
//!
//! Built-in constructors (positional arguments; `e` = declared event,
//! `n` = integer):
//!
//! | constructor | arguments | meaning |
//! |---|---|---|
//! | `subclock` | `(sub, sup)` | `sub ⊆ sup` |
//! | `exclusion` | `(e, e, …)` | at most one per step |
//! | `coincidence` | `(a, b)` | `a = b` |
//! | `precedes` | `(cause, effect[, bound])` | strict precedence |
//! | `weak_precedes` | `(cause, effect[, bound])` | causality |
//! | `alternates` | `(first, second)` | strict alternation |
//! | `union` | `(result, e, …)` | `result = e + …` |
//! | `intersection` | `(result, e, …)` | `result = e * …` |
//! | `delay` | `(result, base, n)` | `result = base $ n` |
//! | `periodic` | `(result, base, offset, period)` | periodic filter |
//! | `sampled` | `(result, trigger, base)` | sampling |
//! | `filtered` | `(result, base, [head], [cycle])` | `base filteredBy head·cycle^ω` |
//!
//! Any constraint declared in a preceding `library { … }` block is
//! also a constructor, its parameters bound positionally (`event`
//! parameters take event names, `int` parameters take integers).
//!
//! Property syntax is exactly what
//! [`Prop::display`](moccml_verify::Prop::display) prints, so rendered
//! properties parse back — the `prop → display → parse` round trip the
//! property suite pins (and the `.mcc` pretty-printer
//! [`SpecAst::to_text`] round-trips whole specifications the same
//! way).
//!
//! ## Example
//!
//! ```
//! use moccml_engine::ExploreOptions;
//! use moccml_verify::{check_props, PropStatus};
//!
//! let compiled = moccml_lang::compile_str(r#"
//! spec handshake {
//!   events req, ack;
//!   constraint order = precedes(req, ack, 1);
//!   constraint one_at_a_time = exclusion(req, ack);
//!   assert deadlock-free;
//!   assert never((req && ack));
//! }"#).expect("well-formed spec");
//!
//! let report = check_props(&compiled.program, &compiled.props,
//!                          &ExploreOptions::default());
//! assert_eq!(report.statuses[0], PropStatus::Holds);
//! assert_eq!(report.statuses[1], PropStatus::Holds);
//! ```
//!
//! Errors carry 1-based `line:column` spans everywhere — including
//! inside embedded library blocks, whose positions are remapped back
//! into the surrounding file:
//!
//! ```
//! let err = moccml_lang::parse_spec("spec x {\n  events a b;\n}")
//!     .expect_err("missing comma");
//! assert_eq!(err.position(), (2, 12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cli;
mod compile;
mod error;
mod lexer;
mod parser;
mod printer;

pub use ast::SpecAst;
pub use compile::{compile, Compiled};
pub use error::LangError;

use moccml_kernel::{StepPred, Universe};
use moccml_verify::Prop;

/// Parses a `.mcc` specification into its AST.
///
/// # Errors
///
/// Returns [`LangError::Parse`] (with the offending token's
/// `line:column`) on syntax errors, including syntax errors inside
/// embedded `library { … }` blocks, remapped into this file's
/// coordinates.
pub fn parse_spec(input: &str) -> Result<SpecAst, LangError> {
    let mut parser = parser::Parser::new(input)?;
    parser.spec()
}

/// Parses and compiles a `.mcc` specification in one call.
///
/// # Errors
///
/// Returns the first [`LangError`] of parsing or compilation.
pub fn compile_str(input: &str) -> Result<Compiled, LangError> {
    compile(&parse_spec(input)?)
}

/// Parses one property in the textual syntax (`always(…)`,
/// `never(…)`, `eventually<=k(…)`, `until<=k(…, …)`,
/// `release<=k(…, …)`, `deadlock-free`) and resolves its event names
/// against `universe` — the small textual property syntax feeding
/// [`Prop`].
///
/// The accepted syntax is exactly what [`Prop::display`] prints:
///
/// ```
/// use moccml_kernel::{StepPred, Universe};
/// use moccml_verify::Prop;
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let prop = Prop::Never(StepPred::and(StepPred::fired(a), StepPred::fired(b)));
/// let parsed = moccml_lang::parse_prop(&prop.display(&u), &u).expect("round-trips");
/// assert_eq!(parsed, prop);
/// ```
///
/// # Errors
///
/// Returns [`LangError::Parse`] on syntax errors and
/// [`LangError::Resolve`] on event names `universe` does not know.
pub fn parse_prop(input: &str, universe: &Universe) -> Result<Prop, LangError> {
    parse_prop_ast(input)?.resolve(universe)
}

/// Parses one property into its unresolved AST (event names kept as
/// text) — [`parse_prop`] without the universe.
///
/// # Errors
///
/// Returns [`LangError::Parse`] on syntax errors.
pub fn parse_prop_ast(input: &str) -> Result<ast::PropAst, LangError> {
    let mut parser = parser::Parser::new(input)?;
    let prop = parser.prop()?;
    parser.expect_end()?;
    Ok(prop)
}

/// Parses one step predicate (`fired` atoms are bare event names,
/// `a # b` excludes, `a => b` implies, `&&`/`||`/`!` combine) and
/// resolves it against `universe`. The accepted syntax is exactly what
/// [`StepPred::display`] prints.
///
/// # Errors
///
/// Returns [`LangError::Parse`] on syntax errors and
/// [`LangError::Resolve`] on unknown event names.
pub fn parse_pred(input: &str, universe: &Universe) -> Result<StepPred, LangError> {
    let mut parser = parser::Parser::new(input)?;
    let pred = parser.pred()?;
    parser.expect_end()?;
    pred.resolve(universe)
}
