//! The `.mcc` lexer: identifiers, integers and punctuation, every
//! token carrying its 1-based `line:column` span and byte offset.
//!
//! The symbol set is the union of what the `.mcc` grammar itself needs
//! (`#`, `=>`, `<=`, …) and everything the embedded automata-library
//! syntax uses (`+=`, `-=`, `==`, …): the spec parser skips over
//! `library { … }` blocks token by token (balancing braces) and hands
//! the raw source slice to [`moccml_automata::parse_library`], so the
//! lexer must at least tokenize that dialect without choking. Both
//! dialects draw their operators from the shared
//! [`moccml_automata::symbols`] tables —
//! [`SymbolTable::spec`](moccml_automata::symbols::SymbolTable::spec)
//! here — so a new operator is added in exactly one place.

use crate::error::LangError;
use moccml_automata::symbols::SymbolTable;

/// One lexed token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    /// An identifier or keyword (`spec`, `events`, an event name, …).
    Ident(String),
    /// A non-negative integer literal.
    Int(i64),
    /// Punctuation / operator, interned as a static string.
    Sym(&'static str),
}

/// A token with its position: 1-based line and column, plus the byte
/// offset span `[start, end)` into the source (used to slice embedded
/// library blocks out verbatim).
#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub tok: Tok,
    pub line: usize,
    pub column: usize,
    pub start: usize,
    pub end: usize,
}

/// Lexes `input` into a token stream.
pub(crate) fn lex(input: &str) -> Result<Vec<Token>, LangError> {
    let table = SymbolTable::spec();
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    // char index of the first char of the current line, for columns
    let mut line_start = 0usize;
    let mut i = 0usize;
    while i < chars.len() {
        let (offset, c) = chars[i];
        let column = i - line_start + 1;
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            c if c.is_whitespace() => i += 1,
            '/' if matches!(chars.get(i + 1), Some((_, '/'))) => {
                while i < chars.len() && chars[i].1 != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                // event names may be dotted (`hydroA.start`), matching
                // the agent-event convention of the sdf crate
                while i < chars.len()
                    && (chars[i].1.is_ascii_alphanumeric()
                        || chars[i].1 == '_'
                        || chars[i].1 == '.')
                {
                    i += 1;
                }
                let end = chars.get(i).map_or(input.len(), |(o, _)| *o);
                tokens.push(Token {
                    tok: Tok::Ident(input[offset..end].to_owned()),
                    line,
                    column,
                    start: offset,
                    end,
                });
            }
            c if c.is_ascii_digit() => {
                while i < chars.len() && chars[i].1.is_ascii_digit() {
                    i += 1;
                }
                let end = chars.get(i).map_or(input.len(), |(o, _)| *o);
                let text = &input[offset..end];
                let value = text.parse::<i64>().map_err(|_| LangError::Parse {
                    line,
                    column,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                tokens.push(Token {
                    tok: Tok::Int(value),
                    line,
                    column,
                    start: offset,
                    end,
                });
            }
            _ => {
                if let Some((_, d)) = chars.get(i + 1) {
                    if let Some(s) = table.two_char(c, *d) {
                        tokens.push(Token {
                            tok: Tok::Sym(s),
                            line,
                            column,
                            start: offset,
                            end: offset + s.len(),
                        });
                        i += 2;
                        continue;
                    }
                }
                let one = table.one_char(c).ok_or_else(|| LangError::Parse {
                    line,
                    column,
                    message: format!("unexpected character `{c}`"),
                })?;
                tokens.push(Token {
                    tok: Tok::Sym(one),
                    line,
                    column,
                    start: offset,
                    end: offset + one.len(),
                });
                i += 1;
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_lines_and_columns() {
        let toks = lex("spec X {\n  events a;\n}").expect("lexes");
        let spec = &toks[0];
        assert_eq!((spec.line, spec.column), (1, 1));
        let events = toks.iter().find(|t| t.tok == Tok::Ident("events".into()));
        let events = events.expect("events token");
        assert_eq!((events.line, events.column), (2, 3));
    }

    #[test]
    fn dotted_idents_and_two_char_symbols() {
        let toks = lex("a.start => b.stop <= 3 # x").expect("lexes");
        let kinds: Vec<Tok> = toks.into_iter().map(|t| t.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Ident("a.start".into()),
                Tok::Sym("=>"),
                Tok::Ident("b.stop".into()),
                Tok::Sym("<="),
                Tok::Int(3),
                Tok::Sym("#"),
                Tok::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("a // comment { } ;\nb").expect("lexes");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn offsets_slice_the_source_back() {
        let src = "library L { var x: int = 1; }";
        let toks = lex(src).expect("lexes");
        let last = toks.last().expect("non-empty");
        assert_eq!(&src[toks[0].start..last.end], src);
    }

    #[test]
    fn rejects_hostile_characters_with_position() {
        let err = lex("spec X {\n  €\n}").expect_err("fails");
        assert_eq!(err.position(), (2, 3));
        let err = lex(&format!("n = {}9", "9".repeat(30))).expect_err("overflow");
        assert_eq!(err.position(), (1, 5));
    }
}
