//! [`LangError`]: every way a `.mcc` specification can be rejected,
//! always with a 1-based `line:column` position.

use moccml_automata::AutomataError;
use std::error::Error;
use std::fmt;

/// Errors raised while lexing, parsing, resolving or compiling a
/// `.mcc` specification.
///
/// Every variant carries the 1-based line and column of the offending
/// token (for embedded automata libraries, positions are remapped from
/// the library block back into the surrounding `.mcc` source), so a
/// frontend can always print `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LangError {
    /// The concrete syntax could not be parsed.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token on its line.
        column: usize,
        /// What was expected / found.
        message: String,
    },
    /// The syntax is well-formed but a name, arity or argument kind is
    /// wrong (unknown event, unknown constructor, bad bound, …).
    Resolve {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token on its line.
        column: usize,
        /// What was wrong.
        message: String,
    },
    /// An embedded `library { … }` block failed *semantic* validation
    /// in `moccml-automata` (duplicate names, missing initial state,
    /// …). Syntax errors inside a block are remapped into
    /// [`LangError::Parse`] instead; this variant points at the start
    /// of the block.
    Library {
        /// 1-based line of the `library` keyword.
        line: usize,
        /// 1-based column of the `library` keyword.
        column: usize,
        /// The underlying automata error.
        source: AutomataError,
    },
}

impl LangError {
    /// The `(line, column)` position of the error.
    #[must_use]
    pub fn position(&self) -> (usize, usize) {
        match self {
            LangError::Parse { line, column, .. }
            | LangError::Resolve { line, column, .. }
            | LangError::Library { line, column, .. } => (*line, *column),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at line {line}, column {column}: {message}"),
            LangError::Resolve {
                line,
                column,
                message,
            } => write!(f, "error at line {line}, column {column}: {message}"),
            LangError::Library {
                line,
                column,
                source,
            } => write!(
                f,
                "in library block at line {line}, column {column}: {source}"
            ),
        }
    }
}

impl Error for LangError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LangError::Library { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_positions() {
        let e = LangError::Parse {
            line: 4,
            column: 9,
            message: "expected `;`".into(),
        };
        assert_eq!(
            e.to_string(),
            "parse error at line 4, column 9: expected `;`"
        );
        assert_eq!(e.position(), (4, 9));
        let e = LangError::Resolve {
            line: 2,
            column: 1,
            message: "unknown event `x`".into(),
        };
        assert!(e.to_string().contains("line 2, column 1"));
        let e = LangError::Library {
            line: 7,
            column: 3,
            source: AutomataError::UnknownName {
                kind: "state",
                name: "S9".into(),
            },
        };
        assert!(e.to_string().contains("unknown state `S9`"));
        assert!(Error::source(&e).is_some());
    }
}
