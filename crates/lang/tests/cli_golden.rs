//! Golden end-to-end contract of the textual frontend (ISSUE 5): the
//! `moccml` CLI verdict on `examples/specs/pam.mcc` equals the
//! programmatic `verify::check` result on the same compiled spec —
//! statuses, counterexample schedules and event names, byte for byte —
//! and is identical for every `--workers` count. The spawned binary's
//! output must equal the in-process CLI's output exactly.

use moccml_engine::ExploreOptions;
use moccml_lang::cli;
use moccml_verify::{check, is_witness, minimize_witness, PropStatus};
use std::path::PathBuf;
use std::process::Command;

fn spec_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/specs")
        .join(name)
}

#[test]
fn pam_cli_verdict_matches_the_programmatic_check() {
    let path = spec_path("pam.mcc");
    let source = std::fs::read_to_string(&path).expect("pam.mcc is checked in");
    let compiled = moccml_lang::compile_str(&source).expect("pam.mcc compiles");
    let universe = compiled.universe().clone();
    assert_eq!(compiled.props.len(), 4, "pam.mcc asserts four properties");

    // the programmatic side: one `check` per property, 2 workers
    let options = ExploreOptions::default().with_workers(2);
    let statuses: Vec<PropStatus> = compiled
        .props
        .iter()
        .map(|p| check(&compiled.program, p, &options))
        .collect();
    assert_eq!(statuses[0], PropStatus::Holds, "deadlock-free holds");
    assert_eq!(statuses[1], PropStatus::Holds, "core exclusion holds");
    let PropStatus::Violated(ce_fusion) = &statuses[2] else {
        panic!("eventually<=2(fusion) is violated");
    };
    let PropStatus::Violated(ce_detect) = &statuses[3] else {
        panic!("never(detect) is violated");
    };
    // the detect witness is the whole pipeline flowing
    assert_eq!(ce_detect.schedule.len(), 4);
    for (prop, ce) in [
        (&compiled.props[2], ce_fusion),
        (&compiled.props[3], ce_detect),
    ] {
        assert!(ce.replays_on(&compiled.program));
        assert!(is_witness(&compiled.program, prop, &ce.schedule));
        let minimized = minimize_witness(&compiled.program, prop, &ce.schedule);
        assert!(is_witness(&compiled.program, prop, &minimized));
    }

    // the CLI side, in-process: the violated rows must carry exactly
    // the programmatic schedules, rendered with event names
    let args: Vec<String> = ["check", path.to_str().expect("utf8"), "--workers", "2"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut cli_out = String::new();
    let code = cli::run(&args, &mut cli_out);
    assert_eq!(code, cli::EXIT_VIOLATED, "{cli_out}");
    for ce in [ce_fusion, ce_detect] {
        let rendered = ce
            .schedule
            .to_lines(&universe)
            .expect("plain names")
            .trim_end()
            .replace('\n', " ; ");
        let expected = format!("witness ({} steps): {}", ce.schedule.len(), rendered);
        assert!(
            cli_out.contains(&expected),
            "CLI output must carry the programmatic witness `{expected}`:\n{cli_out}"
        );
    }
    assert_eq!(cli_out.matches("holds").count(), 2, "{cli_out}");
    assert_eq!(cli_out.matches("VIOLATED").count(), 2, "{cli_out}");

    // the spawned binary agrees with the in-process CLI byte for byte
    let output = Command::new(env!("CARGO_BIN_EXE_moccml"))
        .args(&args)
        .output()
        .expect("moccml binary runs");
    assert_eq!(output.status.code(), Some(1), "exit code 1 on violation");
    assert_eq!(
        String::from_utf8_lossy(&output.stdout),
        cli_out,
        "binary and in-process CLI must print the same report"
    );

    // and the whole report is identical for every worker count
    for workers in [1, 8] {
        let args: Vec<String> = [
            "check",
            path.to_str().expect("utf8"),
            "--workers",
            &workers.to_string(),
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let mut out = String::new();
        assert_eq!(cli::run(&args, &mut out), cli::EXIT_VIOLATED);
        assert_eq!(out, cli_out, "workers={workers}");
    }
}

#[test]
fn pam_spec_round_trips_through_the_pretty_printer() {
    let source = std::fs::read_to_string(spec_path("pam.mcc")).expect("checked in");
    let ast = moccml_lang::parse_spec(&source).expect("parses");
    let printed = ast.to_text();
    let reparsed = moccml_lang::parse_spec(&printed).expect("printed form parses");
    assert_eq!(ast, reparsed);
    // and the round-tripped spec compiles to the same program
    let a = moccml_lang::compile(&ast).expect("compiles");
    let b = moccml_lang::compile(&reparsed).expect("compiles");
    assert_eq!(a.program.template_key(), b.program.template_key());
    assert_eq!(a.props, b.props);
}

#[test]
fn verification_spec_holds_and_conformance_replays() {
    let path = spec_path("verification.mcc");
    let mut out = String::new();
    let code = cli::run(
        &[
            "check".into(),
            path.to_str().expect("utf8").into(),
            "--workers".into(),
            "2".into(),
        ],
        &mut out,
    );
    assert_eq!(code, cli::EXIT_OK, "{out}");
    assert_eq!(out.matches("holds").count(), 3, "{out}");

    let trace = spec_path("verification.trace");
    let mut out = String::new();
    let code = cli::run(
        &[
            "conformance".into(),
            path.to_str().expect("utf8").into(),
            trace.to_str().expect("utf8").into(),
        ],
        &mut out,
    );
    assert_eq!(code, cli::EXIT_OK, "{out}");
    assert!(out.contains("conforms"), "{out}");
}
