//! Integer and boolean expressions of constraint automata: guards and
//! actions (Fig. 2: `Guard`, `BooleanExpression`, `Action`).

use crate::error::AutomataError;
use std::fmt;

/// Environment mapping names (parameters and local variables) to values.
pub(crate) trait Env {
    fn get(&self, name: &str) -> Option<i64>;
}

impl Env for std::collections::HashMap<String, i64> {
    fn get(&self, name: &str) -> Option<i64> {
        std::collections::HashMap::get(self, name).copied()
    }
}

/// An integer expression over parameters and local variables.
///
/// The paper restricts automata variables and parameters to `Event` and
/// `Integer` "to ease exhaustive simulations"; guards and actions are
/// integer arithmetic only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntExpr {
    /// Literal constant.
    Const(i64),
    /// Reference to a parameter or local variable.
    Ref(String),
    /// Sum.
    Add(Box<IntExpr>, Box<IntExpr>),
    /// Difference.
    Sub(Box<IntExpr>, Box<IntExpr>),
    /// Product.
    Mul(Box<IntExpr>, Box<IntExpr>),
    /// Arithmetic negation.
    Neg(Box<IntExpr>),
}

impl IntExpr {
    /// Shorthand for a name reference.
    #[must_use]
    pub fn var(name: &str) -> Self {
        IntExpr::Ref(name.to_owned())
    }

    /// Evaluates the expression.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownName`] on a dangling reference.
    pub(crate) fn eval(&self, env: &dyn Env) -> Result<i64, AutomataError> {
        Ok(match self {
            IntExpr::Const(v) => *v,
            IntExpr::Ref(name) => env.get(name).ok_or_else(|| AutomataError::UnknownName {
                kind: "variable or parameter",
                name: name.clone(),
            })?,
            IntExpr::Add(a, b) => a.eval(env)?.wrapping_add(b.eval(env)?),
            IntExpr::Sub(a, b) => a.eval(env)?.wrapping_sub(b.eval(env)?),
            IntExpr::Mul(a, b) => a.eval(env)?.wrapping_mul(b.eval(env)?),
            IntExpr::Neg(a) => a.eval(env)?.wrapping_neg(),
        })
    }

    /// Collects every referenced name into `out`.
    pub fn collect_refs(&self, out: &mut Vec<String>) {
        match self {
            IntExpr::Const(_) => {}
            IntExpr::Ref(name) => out.push(name.clone()),
            IntExpr::Add(a, b) | IntExpr::Sub(a, b) | IntExpr::Mul(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            IntExpr::Neg(a) => a.collect_refs(out),
        }
    }
}

impl From<i64> for IntExpr {
    fn from(v: i64) -> Self {
        IntExpr::Const(v)
    }
}

impl fmt::Display for IntExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntExpr::Const(v) => write!(f, "{v}"),
            IntExpr::Ref(n) => write!(f, "{n}"),
            IntExpr::Add(a, b) => write!(f, "({a} + {b})"),
            IntExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            IntExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            IntExpr::Neg(a) => write!(f, "-{a}"),
        }
    }
}

/// Comparison operators of guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// A boolean guard over the local variables and parameters (Fig. 2:
/// "a guard is a boolean expression over the local variables or the
/// parameters of the definition").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolExpr {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// Integer comparison.
    Cmp(IntExpr, CmpOp, IntExpr),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// Shorthand for a comparison.
    #[must_use]
    pub fn cmp(a: IntExpr, op: CmpOp, b: IntExpr) -> Self {
        BoolExpr::Cmp(a, op, b)
    }

    /// Evaluates the guard.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownName`] on a dangling reference.
    pub(crate) fn eval(&self, env: &dyn Env) -> Result<bool, AutomataError> {
        Ok(match self {
            BoolExpr::True => true,
            BoolExpr::False => false,
            BoolExpr::Cmp(a, op, b) => op.apply(a.eval(env)?, b.eval(env)?),
            BoolExpr::And(a, b) => a.eval(env)? && b.eval(env)?,
            BoolExpr::Or(a, b) => a.eval(env)? || b.eval(env)?,
            BoolExpr::Not(a) => !a.eval(env)?,
        })
    }

    /// Collects every referenced name into `out`.
    pub fn collect_refs(&self, out: &mut Vec<String>) {
        match self {
            BoolExpr::True | BoolExpr::False => {}
            BoolExpr::Cmp(a, _, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            BoolExpr::Not(a) => a.collect_refs(out),
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::True => write!(f, "true"),
            BoolExpr::False => write!(f, "false"),
            BoolExpr::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            BoolExpr::And(a, b) => write!(f, "({a} && {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} || {b})"),
            BoolExpr::Not(a) => write!(f, "!{a}"),
        }
    }
}

/// A transition action: an integer assignment to a local variable
/// (Fig. 2: "actions such as integer assignments (possibly with a value
/// resulting from an expression such as the increment of a counter)").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// Assigned local variable.
    pub var: String,
    /// Assigned value. `size += pushRate` desugars to
    /// `size = size + pushRate`.
    pub expr: IntExpr,
}

impl Action {
    /// Creates the assignment `var = expr`.
    #[must_use]
    pub fn assign(var: &str, expr: IntExpr) -> Self {
        Action {
            var: var.to_owned(),
            expr,
        }
    }

    /// Sugar for `var = var + expr`.
    #[must_use]
    pub fn increment(var: &str, expr: IntExpr) -> Self {
        Action {
            var: var.to_owned(),
            expr: IntExpr::Add(Box::new(IntExpr::var(var)), Box::new(expr)),
        }
    }

    /// Sugar for `var = var - expr`.
    #[must_use]
    pub fn decrement(var: &str, expr: IntExpr) -> Self {
        Action {
            var: var.to_owned(),
            expr: IntExpr::Sub(Box::new(IntExpr::var(var)), Box::new(expr)),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.var, self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect()
    }

    #[test]
    fn int_expr_arithmetic() {
        let e = IntExpr::Sub(
            Box::new(IntExpr::var("cap")),
            Box::new(IntExpr::Mul(
                Box::new(IntExpr::Const(2)),
                Box::new(IntExpr::var("rate")),
            )),
        );
        let v = e
            .eval(&env(&[("cap", 10), ("rate", 3)]))
            .expect("evaluates");
        assert_eq!(v, 4);
        assert_eq!(e.to_string(), "(cap - (2 * rate))");
    }

    #[test]
    fn int_expr_unknown_ref_errors() {
        let e = IntExpr::var("missing");
        assert!(matches!(
            e.eval(&env(&[])),
            Err(AutomataError::UnknownName { .. })
        ));
    }

    #[test]
    fn neg_and_from() {
        let e = IntExpr::Neg(Box::new(IntExpr::from(5)));
        assert_eq!(e.eval(&env(&[])).expect("evaluates"), -5);
    }

    #[test]
    fn cmp_ops_all_work() {
        let cases = [
            (CmpOp::Lt, 1, 2, true),
            (CmpOp::Le, 2, 2, true),
            (CmpOp::Gt, 2, 2, false),
            (CmpOp::Ge, 3, 2, true),
            (CmpOp::Eq, 2, 2, true),
            (CmpOp::Ne, 2, 2, false),
        ];
        for (op, a, b, expect) in cases {
            assert_eq!(op.apply(a, b), expect, "{a} {op} {b}");
        }
    }

    #[test]
    fn bool_expr_connectives() {
        let g = BoolExpr::And(
            Box::new(BoolExpr::cmp(
                IntExpr::var("x"),
                CmpOp::Gt,
                IntExpr::Const(0),
            )),
            Box::new(BoolExpr::Not(Box::new(BoolExpr::cmp(
                IntExpr::var("x"),
                CmpOp::Gt,
                IntExpr::Const(10),
            )))),
        );
        assert!(g.eval(&env(&[("x", 5)])).expect("evaluates"));
        assert!(!g.eval(&env(&[("x", 11)])).expect("evaluates"));
        assert!(!g.eval(&env(&[("x", 0)])).expect("evaluates"));
    }

    #[test]
    fn refs_are_collected() {
        let g = BoolExpr::Or(
            Box::new(BoolExpr::cmp(
                IntExpr::var("a"),
                CmpOp::Eq,
                IntExpr::var("b"),
            )),
            Box::new(BoolExpr::True),
        );
        let mut refs = Vec::new();
        g.collect_refs(&mut refs);
        assert_eq!(refs, vec!["a", "b"]);
    }

    #[test]
    fn action_sugar_desugars() {
        let inc = Action::increment("size", IntExpr::var("pushRate"));
        let v = inc
            .expr
            .eval(&env(&[("size", 2), ("pushRate", 3)]))
            .expect("evaluates");
        assert_eq!(v, 5);
        let dec = Action::decrement("size", IntExpr::Const(1));
        assert_eq!(dec.expr.eval(&env(&[("size", 2)])).expect("evaluates"), 1);
        assert_eq!(inc.to_string(), "size = (size + pushRate)");
    }
}
