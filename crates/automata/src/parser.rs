//! Textual concrete syntax for MoCCML relation libraries.
//!
//! The paper combines graphical and textual notations; this module is
//! the textual half. The grammar mirrors Fig. 3:
//!
//! ```text
//! library        := "library" IDENT "{" (constraint | automaton)* "}"
//! constraint     := "constraint" IDENT "(" [param ("," param)*] ")"
//! param          := IDENT ":" ("event" | "int")
//! automaton      := "automaton" IDENT "implements" IDENT "{" item* "}"
//! item           := var | state | transition
//! var            := "var" IDENT ":" "int" "=" intExpr ";"
//! state          := ["initial"] ["final"] "state" IDENT ";"
//! transition     := "from" IDENT "to" IDENT
//!                   ["when" eventSet] ["forbid" eventSet]
//!                   ["guard" "[" boolExpr "]"]
//!                   ["do" action ("," action)*] ";"
//! eventSet       := "{" [IDENT ("," IDENT)*] "}"
//! action         := IDENT ("=" | "+=" | "-=") intExpr
//! boolExpr       := orExpr
//! orExpr         := andExpr ("||" andExpr)*
//! andExpr        := notExpr ("&&" notExpr)*
//! notExpr        := "!" notExpr | "(" boolExpr ")" | cmp | "true" | "false"
//! cmp            := intExpr ("<"|"<="|">"|">="|"=="|"!=") intExpr
//! intExpr        := term (("+"|"-") term)*
//! term           := factor ("*" factor)*
//! factor         := INT | IDENT | "-" factor | "(" intExpr ")"
//! ```
//!
//! Line comments start with `//`.

use crate::error::AutomataError;
use crate::expr::{Action, BoolExpr, CmpOp, IntExpr};
use crate::metamodel::{
    AutomatonDefinition, ConstraintDeclaration, ParamKind, RelationLibrary, Transition, VarDecl,
};
use crate::symbols::SymbolTable;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(&'static str),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
    column: usize,
}

fn lex(input: &str) -> Result<Vec<Token>, AutomataError> {
    let table = SymbolTable::library();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    // index (into `bytes`) of the first char of the current line, so a
    // token's 1-based column is `i - line_start + 1`
    let mut line_start = 0usize;
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let column = i - line_start + 1;
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(bytes[start..i].iter().collect()),
                    line,
                    column,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let value = text.parse::<i64>().map_err(|_| AutomataError::Parse {
                    line,
                    column,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                tokens.push(Token {
                    tok: Tok::Int(value),
                    line,
                    column,
                });
            }
            _ => {
                if let Some(d) = bytes.get(i + 1) {
                    if let Some(s) = table.two_char(c, *d) {
                        tokens.push(Token {
                            tok: Tok::Sym(s),
                            line,
                            column,
                        });
                        i += 2;
                        continue;
                    }
                }
                let one = table.one_char(c).ok_or_else(|| AutomataError::Parse {
                    line,
                    column,
                    message: format!("unexpected character `{c}`"),
                })?;
                tokens.push(Token {
                    tok: Tok::Sym(one),
                    line,
                    column,
                });
                i += 1;
            }
        }
    }
    Ok(tokens)
}

/// An unresolved transition: `(source, target, trueTriggers,
/// falseTriggers, guard, actions)` with states still by name.
type RawTransition = (
    String,
    String,
    Vec<String>,
    Vec<String>,
    Option<BoolExpr>,
    Vec<Action>,
);

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    /// `(line, column)` of the token the parser is looking at — or of
    /// the last token when the input ended early, or `(1, 1)` for an
    /// empty token stream (positions are documented 1-based).
    fn position(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or((1, 1), |t| (t.line, t.column))
    }

    fn err(&self, message: String) -> AutomataError {
        let (line, column) = self.position();
        AutomataError::Parse {
            line,
            column,
            message,
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, sym: &'static str) -> Result<(), AutomataError> {
        match self.bump() {
            Some(Tok::Sym(s)) if s == sym => Ok(()),
            other => Err(self.err(format!("expected `{sym}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, AutomataError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), AutomataError> {
        match self.bump() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!("expected keyword `{kw}`, found {other:?}"))),
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn library(&mut self) -> Result<RelationLibrary, AutomataError> {
        self.expect_keyword("library")?;
        let name = self.expect_ident()?;
        self.expect_sym("{")?;
        let mut lib = RelationLibrary::new(&name);
        loop {
            if self.eat_sym("}") {
                break;
            }
            if self.eat_keyword("constraint") {
                lib.add_declaration(self.declaration()?)?;
            } else if self.eat_keyword("automaton") {
                let def = self.automaton(&lib)?;
                lib.add_definition(def)?;
            } else {
                return Err(self.err(format!(
                    "expected `constraint`, `automaton` or `}}`, found {:?}",
                    self.peek()
                )));
            }
        }
        if self.peek().is_some() {
            return Err(self.err("trailing input after library".to_owned()));
        }
        Ok(lib)
    }

    fn declaration(&mut self) -> Result<ConstraintDeclaration, AutomataError> {
        let name = self.expect_ident()?;
        self.expect_sym("(")?;
        let mut params = Vec::new();
        if !self.eat_sym(")") {
            loop {
                let pname = self.expect_ident()?;
                self.expect_sym(":")?;
                let kind = match self.bump() {
                    Some(Tok::Ident(k)) if k == "event" => ParamKind::Event,
                    Some(Tok::Ident(k)) if k == "int" => ParamKind::Int,
                    other => {
                        return Err(self.err(format!("expected `event` or `int`, found {other:?}")))
                    }
                };
                params.push((pname, kind));
                if self.eat_sym(")") {
                    break;
                }
                self.expect_sym(",")?;
            }
        }
        ConstraintDeclaration::new(&name, params)
    }

    fn automaton(&mut self, lib: &RelationLibrary) -> Result<AutomatonDefinition, AutomataError> {
        let name = self.expect_ident()?;
        self.expect_keyword("implements")?;
        let decl_name = self.expect_ident()?;
        let decl = lib
            .declaration(&decl_name)
            .ok_or_else(|| AutomataError::UnknownName {
                kind: "constraint declaration",
                name: decl_name.clone(),
            })?
            .clone();
        self.expect_sym("{")?;
        let mut states: Vec<String> = Vec::new();
        let mut initial: Option<usize> = None;
        let mut finals: Vec<usize> = Vec::new();
        let mut variables: Vec<VarDecl> = Vec::new();
        // transitions reference states by name; resolve after all states
        let mut raw_transitions: Vec<RawTransition> = Vec::new();
        loop {
            if self.eat_sym("}") {
                break;
            }
            if self.eat_keyword("var") {
                let vname = self.expect_ident()?;
                self.expect_sym(":")?;
                self.expect_keyword("int")?;
                self.expect_sym("=")?;
                let init = self.int_expr()?;
                self.expect_sym(";")?;
                variables.push(VarDecl { name: vname, init });
            } else if matches!(self.peek(), Some(Tok::Ident(k)) if k == "initial" || k == "final" || k == "state")
            {
                let mut is_initial = false;
                let mut is_final = false;
                loop {
                    if self.eat_keyword("initial") {
                        is_initial = true;
                    } else if self.eat_keyword("final") {
                        is_final = true;
                    } else {
                        break;
                    }
                }
                self.expect_keyword("state")?;
                let sname = self.expect_ident()?;
                self.expect_sym(";")?;
                let idx = match states.iter().position(|s| *s == sname) {
                    Some(i) => i,
                    None => {
                        states.push(sname);
                        states.len() - 1
                    }
                };
                if is_initial {
                    if initial.is_some() {
                        return Err(self.err("multiple initial states".to_owned()));
                    }
                    initial = Some(idx);
                }
                if is_final && !finals.contains(&idx) {
                    finals.push(idx);
                }
            } else if self.eat_keyword("from") {
                let source = self.expect_ident()?;
                self.expect_keyword("to")?;
                let target = self.expect_ident()?;
                let mut true_triggers = Vec::new();
                let mut false_triggers = Vec::new();
                let mut guard = None;
                let mut actions = Vec::new();
                if self.eat_keyword("when") {
                    true_triggers = self.event_set()?;
                }
                if self.eat_keyword("forbid") {
                    false_triggers = self.event_set()?;
                }
                if self.eat_keyword("guard") {
                    self.expect_sym("[")?;
                    guard = Some(self.bool_expr()?);
                    self.expect_sym("]")?;
                }
                if self.eat_keyword("do") {
                    loop {
                        actions.push(self.action()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                }
                self.expect_sym(";")?;
                raw_transitions.push((
                    source,
                    target,
                    true_triggers,
                    false_triggers,
                    guard,
                    actions,
                ));
            } else {
                return Err(self.err(format!(
                    "expected `var`, `state`, `from` or `}}`, found {:?}",
                    self.peek()
                )));
            }
        }
        let initial = initial.ok_or_else(|| AutomataError::InvalidDefinition {
            definition: name.clone(),
            reason: "no initial state declared".to_owned(),
        })?;
        let mut transitions = Vec::new();
        for (src, tgt, tt, ft, guard, actions) in raw_transitions {
            let source =
                states
                    .iter()
                    .position(|s| *s == src)
                    .ok_or(AutomataError::UnknownName {
                        kind: "state",
                        name: src,
                    })?;
            let target =
                states
                    .iter()
                    .position(|s| *s == tgt)
                    .ok_or(AutomataError::UnknownName {
                        kind: "state",
                        name: tgt,
                    })?;
            transitions.push(Transition {
                source,
                target,
                true_triggers: tt,
                false_triggers: ft,
                guard,
                actions,
            });
        }
        AutomatonDefinition::new(&name, decl, states, initial, finals, variables, transitions)
    }

    fn event_set(&mut self) -> Result<Vec<String>, AutomataError> {
        self.expect_sym("{")?;
        let mut out = Vec::new();
        if self.eat_sym("}") {
            return Ok(out);
        }
        loop {
            out.push(self.expect_ident()?);
            if self.eat_sym("}") {
                break;
            }
            self.expect_sym(",")?;
        }
        Ok(out)
    }

    fn action(&mut self) -> Result<Action, AutomataError> {
        let var = self.expect_ident()?;
        match self.bump() {
            Some(Tok::Sym("=")) => Ok(Action::assign(&var, self.int_expr()?)),
            Some(Tok::Sym("+=")) => Ok(Action::increment(&var, self.int_expr()?)),
            Some(Tok::Sym("-=")) => Ok(Action::decrement(&var, self.int_expr()?)),
            other => Err(self.err(format!("expected `=`, `+=` or `-=`, found {other:?}"))),
        }
    }

    fn bool_expr(&mut self) -> Result<BoolExpr, AutomataError> {
        let mut left = self.and_expr()?;
        while self.eat_sym("||") {
            let right = self.and_expr()?;
            left = BoolExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<BoolExpr, AutomataError> {
        let mut left = self.not_expr()?;
        while self.eat_sym("&&") {
            let right = self.not_expr()?;
            left = BoolExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<BoolExpr, AutomataError> {
        if self.eat_sym("!") {
            return Ok(BoolExpr::Not(Box::new(self.not_expr()?)));
        }
        if self.eat_keyword("true") {
            return Ok(BoolExpr::True);
        }
        if self.eat_keyword("false") {
            return Ok(BoolExpr::False);
        }
        // disambiguate "( boolExpr )" from "( intExpr ) < …": try bool first
        if matches!(self.peek(), Some(Tok::Sym("("))) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.bool_expr() {
                if self.eat_sym(")")
                    && !matches!(
                        self.peek(),
                        Some(Tok::Sym(
                            "<" | "<=" | ">" | ">=" | "==" | "!=" | "+" | "-" | "*"
                        ))
                    )
                {
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        self.cmp()
    }

    fn cmp(&mut self) -> Result<BoolExpr, AutomataError> {
        let left = self.int_expr()?;
        let op = match self.bump() {
            Some(Tok::Sym("<")) => CmpOp::Lt,
            Some(Tok::Sym("<=")) => CmpOp::Le,
            Some(Tok::Sym(">")) => CmpOp::Gt,
            Some(Tok::Sym(">=")) => CmpOp::Ge,
            Some(Tok::Sym("==")) => CmpOp::Eq,
            Some(Tok::Sym("!=")) => CmpOp::Ne,
            other => return Err(self.err(format!("expected comparison operator, found {other:?}"))),
        };
        let right = self.int_expr()?;
        Ok(BoolExpr::Cmp(left, op, right))
    }

    fn int_expr(&mut self) -> Result<IntExpr, AutomataError> {
        let mut left = self.term()?;
        loop {
            if self.eat_sym("+") {
                left = IntExpr::Add(Box::new(left), Box::new(self.term()?));
            } else if self.eat_sym("-") {
                left = IntExpr::Sub(Box::new(left), Box::new(self.term()?));
            } else {
                return Ok(left);
            }
        }
    }

    fn term(&mut self) -> Result<IntExpr, AutomataError> {
        let mut left = self.factor()?;
        while self.eat_sym("*") {
            left = IntExpr::Mul(Box::new(left), Box::new(self.factor()?));
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<IntExpr, AutomataError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(IntExpr::Const(v)),
            Some(Tok::Ident(n)) => Ok(IntExpr::Ref(n)),
            Some(Tok::Sym("-")) => Ok(IntExpr::Neg(Box::new(self.factor()?))),
            Some(Tok::Sym("(")) => {
                let inner = self.int_expr()?;
                self.expect_sym(")")?;
                Ok(inner)
            }
            other => Err(self.err(format!("expected integer expression, found {other:?}"))),
        }
    }
}

/// Parses the textual concrete syntax of a relation library.
///
/// See the grammar in this module's source documentation and the crate
/// documentation for a complete example.
///
/// # Errors
///
/// Returns [`AutomataError::Parse`] on syntax errors (with the line
/// number) and the usual validation errors
/// ([`AutomataError::UnknownName`], [`AutomataError::DuplicateName`],
/// [`AutomataError::InvalidDefinition`]) on well-formed but inconsistent
/// input.
pub fn parse_library(input: &str) -> Result<RelationLibrary, AutomataError> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.library()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLACE: &str = r#"
    // Fig. 3 of the paper
    library SimpleSDFRelationLibrary {
      constraint PlaceConstraint(write: event, read: event,
                                 pushRate: int, popRate: int,
                                 itsDelay: int, itsCapacity: int)
      automaton PlaceConstraintDef implements PlaceConstraint {
        var size: int = itsDelay;
        initial state S0;
        final state S0;
        from S0 to S0 when {write} forbid {read}
          guard [size <= itsCapacity - pushRate] do size += pushRate;
        from S0 to S0 when {read} forbid {write}
          guard [size >= popRate] do size -= popRate;
      }
    }"#;

    #[test]
    fn parses_fig3_library() {
        let lib = parse_library(PLACE).expect("parses");
        assert_eq!(lib.name(), "SimpleSDFRelationLibrary");
        assert_eq!(lib.declarations().len(), 1);
        let def = lib.definition_for("PlaceConstraint").expect("definition");
        assert_eq!(def.states(), ["S0"]);
        assert_eq!(def.transitions().len(), 2);
        assert_eq!(def.variables().len(), 1);
        assert_eq!(def.transitions()[0].true_triggers, vec!["write"]);
        assert_eq!(def.transitions()[0].false_triggers, vec!["read"]);
        assert!(def.transitions()[0].guard.is_some());
        assert_eq!(def.transitions()[0].actions.len(), 1);
    }

    #[test]
    fn parses_multiple_states_and_final_markers() {
        let lib = parse_library(
            r#"library L {
              constraint C(a: event, b: event)
              automaton D implements C {
                initial state Idle;
                final state Done;
                state Work;
                from Idle to Work when {a};
                from Work to Done when {b} forbid {a};
              }
            }"#,
        )
        .expect("parses");
        let def = lib.definition_for("C").expect("definition");
        assert_eq!(def.states().len(), 3);
        assert_eq!(def.initial(), def.state_index("Idle").expect("idle"));
        assert_eq!(def.finals(), &[def.state_index("Done").expect("done")]);
    }

    #[test]
    fn parses_complex_guards_and_actions() {
        let lib = parse_library(
            r#"library L {
              constraint C(a: event, n: int)
              automaton D implements C {
                var x: int = 2 * n + 1;
                var y: int = -n;
                initial state S; final state S;
                from S to S when {a}
                  guard [(x > 0 && x <= 10) || y == -1]
                  do x = x - 1, y += 2;
              }
            }"#,
        )
        .expect("parses");
        let def = lib.definition_for("C").expect("definition");
        assert_eq!(def.variables().len(), 2);
        assert_eq!(def.transitions()[0].actions.len(), 2);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_library("library L {\n  constraint C(\n").expect_err("fails");
        match err {
            AutomataError::Parse { line, .. } => assert!(line >= 2, "line = {line}"),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn reports_columns() {
        // the stray `@` sits at line 2, column 7
        let err = parse_library("library L {\n      @\n}").expect_err("fails");
        match err {
            AutomataError::Parse { line, column, .. } => {
                assert_eq!((line, column), (2, 7));
            }
            other => panic!("expected parse error, got {other}"),
        }
        // a syntax error points at the offending *token*'s column:
        // `state` (line 1, column 28) where a library item was expected
        let err = parse_library("library L { constraint C() state }").expect_err("fails");
        match err {
            AutomataError::Parse { line, column, .. } => {
                assert_eq!((line, column), (1, 28));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_unknown_declaration() {
        let err = parse_library(
            "library L { automaton D implements Ghost { initial state S; final state S; } }",
        )
        .expect_err("fails");
        assert!(matches!(err, AutomataError::UnknownName { .. }));
    }

    #[test]
    fn rejects_missing_initial_state() {
        let err = parse_library(
            "library L { constraint C(a: event) automaton D implements C { state S; final state S; } }",
        )
        .expect_err("fails");
        assert!(matches!(err, AutomataError::InvalidDefinition { .. }));
    }

    #[test]
    fn rejects_unexpected_character() {
        let err = parse_library("library L { @ }").expect_err("fails");
        assert!(matches!(err, AutomataError::Parse { .. }));
    }

    #[test]
    fn rejects_trailing_input() {
        let err = parse_library("library L { } library M { }").expect_err("fails");
        assert!(matches!(err, AutomataError::Parse { .. }));
    }

    #[test]
    fn empty_event_set_is_allowed_syntactically() {
        // an automaton may have a transition with only falseTriggers
        let lib = parse_library(
            r#"library L {
              constraint C(a: event, b: event)
              automaton D implements C {
                initial state S; final state S;
                from S to S when {b} forbid {};
              }
            }"#,
        )
        .expect("parses");
        assert_eq!(
            lib.definition_for("C").expect("definition").transitions()[0]
                .false_triggers
                .len(),
            0
        );
    }

    #[test]
    fn parenthesised_bool_followed_by_connective() {
        let lib = parse_library(
            r#"library L {
              constraint C(a: event, n: int)
              automaton D implements C {
                var x: int = n;
                initial state S; final state S;
                from S to S when {a} guard [(x > 0) && (x < 5)];
              }
            }"#,
        )
        .expect("parses");
        assert!(lib.definition_for("C").expect("def").transitions()[0]
            .guard
            .is_some());
    }
}
