//! Renderers for relation libraries: back to the textual concrete
//! syntax (round-trips through the parser) and to Graphviz DOT (the
//! graphical notation of the paper's Fig. 3).

use crate::expr::{Action, IntExpr};
use crate::metamodel::{AutomatonDefinition, ParamKind, RelationLibrary};
use std::fmt::Write as _;

/// Pretty-prints a library in the textual concrete syntax accepted by
/// [`parse_library`](crate::parse_library); parsing the output yields
/// structurally equal declarations and definitions.
#[must_use]
pub fn library_to_text(library: &RelationLibrary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library {} {{", library.name());
    for decl in library.declarations() {
        let params: Vec<String> = decl
            .params()
            .iter()
            .map(|(name, kind)| {
                format!(
                    "{name}: {}",
                    match kind {
                        ParamKind::Event => "event",
                        ParamKind::Int => "int",
                    }
                )
            })
            .collect();
        let _ = writeln!(out, "  constraint {}({})", decl.name(), params.join(", "));
        if let Some(def) = library.definition_for(decl.name()) {
            let _ = writeln!(
                out,
                "  automaton {} implements {} {{",
                def.name(),
                decl.name()
            );
            for v in def.variables() {
                let _ = writeln!(out, "    var {}: int = {};", v.name, render_expr(&v.init));
            }
            for (i, state) in def.states().iter().enumerate() {
                let mut qualifiers = String::new();
                if def.initial() == i {
                    qualifiers.push_str("initial ");
                }
                if def.finals().contains(&i) {
                    qualifiers.push_str("final ");
                }
                let _ = writeln!(out, "    {qualifiers}state {state};");
            }
            for t in def.transitions() {
                let mut line = format!(
                    "    from {} to {}",
                    def.states()[t.source],
                    def.states()[t.target]
                );
                if !t.true_triggers.is_empty() {
                    let _ = write!(line, " when {{{}}}", t.true_triggers.join(", "));
                }
                if !t.false_triggers.is_empty() {
                    let _ = write!(line, " forbid {{{}}}", t.false_triggers.join(", "));
                }
                if let Some(g) = &t.guard {
                    let _ = write!(line, " guard [{g}]");
                }
                if !t.actions.is_empty() {
                    let actions: Vec<String> = t.actions.iter().map(render_action).collect();
                    let _ = write!(line, " do {}", actions.join(", "));
                }
                let _ = writeln!(out, "{line};");
            }
            let _ = writeln!(out, "  }}");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn render_expr(e: &IntExpr) -> String {
    match e {
        IntExpr::Const(v) => v.to_string(),
        IntExpr::Ref(n) => n.clone(),
        IntExpr::Add(a, b) => format!("({} + {})", render_expr(a), render_expr(b)),
        IntExpr::Sub(a, b) => format!("({} - {})", render_expr(a), render_expr(b)),
        IntExpr::Mul(a, b) => format!("({} * {})", render_expr(a), render_expr(b)),
        IntExpr::Neg(a) => format!("-{}", render_expr(a)),
    }
}

fn render_action(a: &Action) -> String {
    format!("{} = {}", a.var, render_expr(&a.expr))
}

/// Renders one automaton definition as a Graphviz `digraph` in the
/// visual style of the paper's Fig. 3: states as circles (initial bold,
/// finals double), transitions labelled
/// `{trueTriggers}{falseTriggers} [guard] / actions`.
#[must_use]
pub fn automaton_to_dot(def: &AutomatonDefinition) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", def.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, state) in def.states().iter().enumerate() {
        let shape = if def.finals().contains(&i) {
            "doublecircle"
        } else {
            "circle"
        };
        let style = if def.initial() == i {
            ", style=bold"
        } else {
            ""
        };
        let _ = writeln!(out, "  {state} [shape={shape}{style}];");
    }
    for t in def.transitions() {
        let mut label = format!("{{{}}}", t.true_triggers.join(","));
        let _ = write!(label, "{{{}}}", t.false_triggers.join(","));
        if let Some(g) = &t.guard {
            let _ = write!(label, "\\n[{g}]");
        }
        if !t.actions.is_empty() {
            let actions: Vec<String> = t.actions.iter().map(render_action).collect();
            let _ = write!(label, "\\n/ {}", actions.join(", "));
        }
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            def.states()[t.source],
            def.states()[t.target],
            label
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_library;

    const SOURCE: &str = r#"
    library L {
      constraint Gate(open: event, pass: event, limit: int)
      automaton GateDef implements Gate {
        var n: int = 2 * limit;
        initial state S;
        final state S;
        state T;
        from S to T when {open} forbid {pass} guard [n > 0] do n = n - 1;
        from T to S when {pass};
      }
    }"#;

    #[test]
    fn text_round_trips_through_the_parser() {
        let lib = parse_library(SOURCE).expect("parses");
        let rendered = library_to_text(&lib);
        let reparsed = parse_library(&rendered).expect("rendered text parses");
        assert_eq!(lib.declarations(), reparsed.declarations());
        assert_eq!(
            lib.definition_for("Gate").expect("def").as_ref(),
            reparsed.definition_for("Gate").expect("def").as_ref()
        );
    }

    #[test]
    fn dot_contains_states_and_labels() {
        let lib = parse_library(SOURCE).expect("parses");
        let dot = automaton_to_dot(lib.definition_for("Gate").expect("def"));
        assert!(dot.contains("S [shape=doublecircle, style=bold];"));
        assert!(dot.contains("T [shape=circle];"));
        assert!(dot.contains("S -> T"));
        assert!(dot.contains("{open}{pass}"));
        assert!(dot.contains("[n > 0]"));
        assert!(dot.contains("/ n = (n - 1)"));
    }

    #[test]
    fn sdf_library_round_trips() {
        // the embedded SDF library of the sdf crate uses every syntax
        // feature; guard the renderer against it via a local copy of
        // the Fig. 3 place automaton.
        let fig3 = r#"library SDF {
          constraint PlaceConstraint(write: event, read: event,
                                     pushRate: int, popRate: int,
                                     itsDelay: int, itsCapacity: int)
          automaton PlaceConstraintDef implements PlaceConstraint {
            var size: int = itsDelay;
            initial state S0; final state S0;
            from S0 to S0 when {write} forbid {read}
              guard [size <= itsCapacity - pushRate] do size += pushRate;
            from S0 to S0 when {read} forbid {write}
              guard [size >= popRate] do size -= popRate;
          }
        }"#;
        let lib = parse_library(fig3).expect("parses");
        let reparsed = parse_library(&library_to_text(&lib)).expect("round-trips");
        assert_eq!(
            lib.definition_for("PlaceConstraint").expect("def").as_ref(),
            reparsed
                .definition_for("PlaceConstraint")
                .expect("def")
                .as_ref()
        );
    }
}
