//! Instantiation and execution of constraint automata.

use crate::error::AutomataError;
use crate::expr::Env;
use crate::metamodel::{AutomatonDefinition, ParamKind, Transition};
use moccml_kernel::{Constraint, EventId, KernelError, StateKey, Step, StepFormula};
use std::collections::HashMap;
use std::sync::Arc;

/// Builder binding actual events/integers to the parameters of a
/// definition — the paper's *instantiation process* ("4 constants:
/// itsCapacity, itsDelay, pushRate, popRate, which are set during the
/// instantiation process").
///
/// Obtained from [`RelationLibrary::instantiate`]; call
/// [`bind_event`](InstanceBuilder::bind_event) /
/// [`bind_int`](InstanceBuilder::bind_int) for every parameter, then
/// [`finish`](InstanceBuilder::finish).
///
/// [`RelationLibrary::instantiate`]: crate::RelationLibrary::instantiate
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    def: Arc<AutomatonDefinition>,
    name: String,
    events: HashMap<String, EventId>,
    ints: HashMap<String, i64>,
}

impl InstanceBuilder {
    pub(crate) fn new(def: Arc<AutomatonDefinition>, name: &str) -> Self {
        InstanceBuilder {
            def,
            name: name.to_owned(),
            events: HashMap::new(),
            ints: HashMap::new(),
        }
    }

    /// Binds event parameter `param` to `event`.
    #[must_use]
    pub fn bind_event(mut self, param: &str, event: EventId) -> Self {
        self.events.insert(param.to_owned(), event);
        self
    }

    /// Binds integer parameter `param` to `value`.
    #[must_use]
    pub fn bind_int(mut self, param: &str, value: i64) -> Self {
        self.ints.insert(param.to_owned(), value);
        self
    }

    /// Checks completeness and typing of the bindings and produces the
    /// runnable instance.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidBinding`] if a parameter is
    /// unbound, a binding names no parameter, or kinds disagree.
    pub fn finish(self) -> Result<AutomatonInstance, AutomataError> {
        let bad = |reason: String| AutomataError::InvalidBinding {
            instance: self.name.clone(),
            reason,
        };
        let decl = self.def.declaration();
        for (name, _) in self.events.iter() {
            if decl.param_kind(name) != Some(ParamKind::Event) {
                return Err(bad(format!("`{name}` is not an event parameter")));
            }
        }
        for (name, _) in self.ints.iter() {
            if decl.param_kind(name) != Some(ParamKind::Int) {
                return Err(bad(format!("`{name}` is not an integer parameter")));
            }
        }
        let mut event_bindings = Vec::new();
        let mut int_env: HashMap<String, i64> = HashMap::new();
        for (p, kind) in decl.params() {
            match kind {
                ParamKind::Event => {
                    let id = self
                        .events
                        .get(p)
                        .copied()
                        .ok_or_else(|| bad(format!("event parameter `{p}` is unbound")))?;
                    event_bindings.push((p.clone(), id));
                }
                ParamKind::Int => {
                    let v = self
                        .ints
                        .get(p)
                        .copied()
                        .ok_or_else(|| bad(format!("integer parameter `{p}` is unbound")))?;
                    int_env.insert(p.clone(), v);
                }
            }
        }
        // evaluate variable initialisers over the integer parameters
        let mut vars = Vec::new();
        for v in self.def.variables() {
            let value = v.init.eval(&int_env).map_err(|e| bad(e.to_string()))?;
            vars.push((v.name.clone(), value));
        }
        let initial = self.def.initial();
        Ok(AutomatonInstance {
            def: self.def,
            name: self.name,
            event_bindings,
            int_env,
            initial_vars: vars.clone(),
            current: initial,
            vars,
        })
    }
}

/// A runnable constraint automaton: a definition whose parameters are
/// bound, executing the Sec. II-C semantics.
///
/// See the [crate documentation](crate) for a full example built from
/// the paper's Fig. 3.
#[derive(Debug, Clone)]
pub struct AutomatonInstance {
    def: Arc<AutomatonDefinition>,
    name: String,
    /// Event parameter name → bound event, in declaration order.
    event_bindings: Vec<(String, EventId)>,
    int_env: HashMap<String, i64>,
    initial_vars: Vec<(String, i64)>,
    current: usize,
    vars: Vec<(String, i64)>,
}

struct InstanceEnv<'a> {
    ints: &'a HashMap<String, i64>,
    vars: &'a [(String, i64)],
}

impl Env for InstanceEnv<'_> {
    fn get(&self, name: &str) -> Option<i64> {
        self.vars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .or_else(|| self.ints.get(name).copied())
    }
}

impl AutomatonInstance {
    /// The underlying definition.
    #[must_use]
    pub fn definition(&self) -> &AutomatonDefinition {
        &self.def
    }

    /// Name of the current state.
    #[must_use]
    pub fn current_state(&self) -> &str {
        &self.def.states()[self.current]
    }

    /// Whether the automaton currently sits in a final state — the
    /// acceptance criterion used by reachability analyses.
    #[must_use]
    pub fn is_in_final_state(&self) -> bool {
        self.def.finals().contains(&self.current)
    }

    /// Current value of local variable `name`, if declared.
    #[must_use]
    pub fn variable(&self, name: &str) -> Option<i64> {
        self.vars.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The event bound to event parameter `param`, if any.
    #[must_use]
    pub fn bound_event(&self, param: &str) -> Option<EventId> {
        self.event_bindings
            .iter()
            .find(|(n, _)| n == param)
            .map(|(_, e)| *e)
    }

    fn event_of(&self, param: &str) -> EventId {
        self.bound_event(param)
            .expect("validated at construction: trigger names an event parameter")
    }

    fn guard_holds(&self, t: &Transition) -> bool {
        let env = InstanceEnv {
            ints: &self.int_env,
            vars: &self.vars,
        };
        match &t.guard {
            None => true,
            Some(g) => g.eval(&env).unwrap_or(false),
        }
    }

    fn transition_matches(&self, t: &Transition, step: &Step) -> bool {
        self.guard_holds(t)
            && t.true_triggers.iter().all(|p| step.contains(self.event_of(p)))
            && t.false_triggers.iter().all(|p| !step.contains(self.event_of(p)))
            // a transition with no trueTriggers would otherwise "fire" on
            // stuttering steps; require at least one constrained event.
            && (!t.true_triggers.is_empty()
                || self
                    .event_bindings
                    .iter()
                    .any(|(_, e)| step.contains(*e)))
    }

    /// Transitions leaving the current state.
    fn outgoing(&self) -> impl Iterator<Item = &Transition> {
        self.def
            .transitions()
            .iter()
            .filter(move |t| t.source == self.current)
    }
}

impl Constraint for AutomatonInstance {
    fn name(&self) -> &str {
        &self.name
    }

    fn constrained_events(&self) -> Vec<EventId> {
        self.event_bindings.iter().map(|(_, e)| *e).collect()
    }

    /// Sec. II-C: "the semantics of a constraint automata is defined as
    /// a logical disjunction of the boolean expressions associated to
    /// the output transitions of the current state", each being the
    /// conjunction of its `trueTriggers` and of the negation of its
    /// `falseTriggers`, provided the guard holds — plus the stuttering
    /// disjunct (no constrained event occurs).
    fn current_formula(&self) -> StepFormula {
        let mut disjuncts = Vec::new();
        for t in self.outgoing() {
            if !self.guard_holds(t) {
                continue;
            }
            let mut conj: Vec<StepFormula> = t
                .true_triggers
                .iter()
                .map(|p| StepFormula::event(self.event_of(p)))
                .collect();
            conj.extend(
                t.false_triggers
                    .iter()
                    .map(|p| StepFormula::not(StepFormula::event(self.event_of(p)))),
            );
            disjuncts.push(StepFormula::and(conj));
        }
        // stuttering: a step ignoring this automaton's events is allowed
        disjuncts.push(StepFormula::none_of(
            self.event_bindings.iter().map(|(_, e)| *e),
        ));
        StepFormula::or(disjuncts).simplify()
    }

    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        let fired = self
            .outgoing()
            .enumerate()
            .find(|(_, t)| self.transition_matches(t, step))
            .map(|(i, _)| i);
        if let Some(local_idx) = fired {
            let t = self
                .outgoing()
                .nth(local_idx)
                .expect("index from enumeration")
                .clone();
            // actions are executed sequentially, each seeing prior writes
            for a in &t.actions {
                let env = InstanceEnv {
                    ints: &self.int_env,
                    vars: &self.vars,
                };
                let value = a.expr.eval(&env).map_err(|e| KernelError::StepRejected {
                    constraint: self.name.clone(),
                    step: format!("{step} (action failed: {e})"),
                })?;
                let slot = self
                    .vars
                    .iter_mut()
                    .find(|(n, _)| n == &a.var)
                    .expect("validated at construction: action assigns a variable");
                slot.1 = value;
            }
            self.current = t.target;
            return Ok(());
        }
        // stuttering is acceptable when none of our events occur
        if self.event_bindings.iter().all(|(_, e)| !step.contains(*e)) {
            return Ok(());
        }
        Err(KernelError::StepRejected {
            constraint: self.name.clone(),
            step: step.to_string(),
        })
    }

    fn state_key(&self) -> StateKey {
        let mut key =
            StateKey::from_values([i64::try_from(self.current).expect("state index fits i64")]);
        for (_, v) in &self.vars {
            key.push(*v);
        }
        key
    }

    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        let values = key.values();
        if values.len() != 1 + self.vars.len() {
            return Err(KernelError::InvalidStateKey {
                constraint: self.name.clone(),
                reason: format!(
                    "expected {} values, got {}",
                    1 + self.vars.len(),
                    values.len()
                ),
            });
        }
        let state = usize::try_from(values[0])
            .ok()
            .filter(|s| *s < self.def.states().len());
        let Some(state) = state else {
            return Err(KernelError::InvalidStateKey {
                constraint: self.name.clone(),
                reason: format!("state index {} out of range", values[0]),
            });
        };
        self.current = state;
        for (slot, v) in self.vars.iter_mut().zip(&values[1..]) {
            slot.1 = *v;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.current = self.def.initial();
        self.vars = self.initial_vars.clone();
    }

    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Action, BoolExpr, CmpOp, IntExpr};
    use crate::metamodel::{ConstraintDeclaration, RelationLibrary, VarDecl};
    use moccml_kernel::Universe;

    /// Builds the Fig. 3 PlaceConstraint library programmatically.
    fn place_library() -> RelationLibrary {
        let decl = ConstraintDeclaration::new(
            "PlaceConstraint",
            vec![
                ("write".to_owned(), ParamKind::Event),
                ("read".to_owned(), ParamKind::Event),
                ("pushRate".to_owned(), ParamKind::Int),
                ("popRate".to_owned(), ParamKind::Int),
                ("itsDelay".to_owned(), ParamKind::Int),
                ("itsCapacity".to_owned(), ParamKind::Int),
            ],
        )
        .expect("declaration");
        let def = AutomatonDefinition::new(
            "PlaceConstraintDef",
            decl.clone(),
            vec!["S0".into()],
            0,
            vec![0],
            vec![VarDecl {
                name: "size".into(),
                init: IntExpr::var("itsDelay"),
            }],
            vec![
                Transition {
                    source: 0,
                    target: 0,
                    true_triggers: vec!["write".into()],
                    false_triggers: vec!["read".into()],
                    guard: Some(BoolExpr::cmp(
                        IntExpr::var("size"),
                        CmpOp::Le,
                        IntExpr::Sub(
                            Box::new(IntExpr::var("itsCapacity")),
                            Box::new(IntExpr::var("pushRate")),
                        ),
                    )),
                    actions: vec![Action::increment("size", IntExpr::var("pushRate"))],
                },
                Transition {
                    source: 0,
                    target: 0,
                    true_triggers: vec!["read".into()],
                    false_triggers: vec!["write".into()],
                    guard: Some(BoolExpr::cmp(
                        IntExpr::var("size"),
                        CmpOp::Ge,
                        IntExpr::var("popRate"),
                    )),
                    actions: vec![Action::decrement("size", IntExpr::var("popRate"))],
                },
            ],
        )
        .expect("definition");
        let mut lib = RelationLibrary::new("SimpleSDFRelationLibrary");
        lib.add_declaration(decl).expect("decl");
        lib.add_definition(def).expect("def");
        lib
    }

    fn place_instance(
        u: &mut Universe,
        delay: i64,
        capacity: i64,
    ) -> (AutomatonInstance, EventId, EventId) {
        let w = u.event("w");
        let r = u.event("r");
        let inst = place_library()
            .instantiate("PlaceConstraint", "place")
            .expect("instantiate")
            .bind_event("write", w)
            .bind_event("read", r)
            .bind_int("pushRate", 1)
            .bind_int("popRate", 1)
            .bind_int("itsDelay", delay)
            .bind_int("itsCapacity", capacity)
            .finish()
            .expect("finish");
        (inst, w, r)
    }

    #[test]
    fn empty_place_blocks_read() {
        let mut u = Universe::new();
        let (p, w, r) = place_instance(&mut u, 0, 2);
        let f = p.current_formula();
        assert!(f.eval(&Step::from_events([w])));
        assert!(!f.eval(&Step::from_events([r])));
        assert!(!f.eval(&Step::from_events([w, r]))); // Fig. 3 has no joint transition
        assert!(f.eval(&Step::new())); // stuttering
    }

    #[test]
    fn full_place_blocks_write() {
        let mut u = Universe::new();
        let (mut p, w, r) = place_instance(&mut u, 0, 2);
        p.fire(&Step::from_events([w])).expect("w1");
        p.fire(&Step::from_events([w])).expect("w2");
        assert_eq!(p.variable("size"), Some(2));
        assert!(!p.current_formula().eval(&Step::from_events([w])));
        p.fire(&Step::from_events([r])).expect("r1");
        assert_eq!(p.variable("size"), Some(1));
    }

    #[test]
    fn initial_delay_preloads_tokens() {
        let mut u = Universe::new();
        let (p, _, r) = place_instance(&mut u, 1, 2);
        // one initial token: read possible immediately (Fig. 3 init size=itsDelay)
        assert!(p.current_formula().eval(&Step::from_events([r])));
    }

    #[test]
    fn stuttering_keeps_state_and_foreign_events_pass() {
        let mut u = Universe::new();
        let (mut p, _, _) = place_instance(&mut u, 0, 2);
        let other = u.event("other");
        let key = p.state_key();
        p.fire(&Step::from_events([other]))
            .expect("foreign event ignored");
        assert_eq!(p.state_key(), key);
    }

    #[test]
    fn violating_step_is_rejected_by_fire() {
        let mut u = Universe::new();
        let (mut p, _, r) = place_instance(&mut u, 0, 2);
        assert!(p.fire(&Step::from_events([r])).is_err());
    }

    #[test]
    fn state_key_round_trip() {
        let mut u = Universe::new();
        let (mut p, w, _) = place_instance(&mut u, 0, 3);
        p.fire(&Step::from_events([w])).expect("w");
        let key = p.state_key();
        assert_eq!(key.values(), &[0, 1]); // state S0, size 1
        p.reset();
        assert_eq!(p.variable("size"), Some(0));
        p.restore(&key).expect("restore");
        assert_eq!(p.variable("size"), Some(1));
        assert!(p.restore(&StateKey::from_values([0])).is_err());
        assert!(p.restore(&StateKey::from_values([9, 1])).is_err());
    }

    #[test]
    fn builder_rejects_incomplete_or_ill_typed_bindings() {
        let mut u = Universe::new();
        let w = u.event("w");
        let lib = place_library();
        // unbound parameters
        let r = lib
            .instantiate("PlaceConstraint", "p")
            .expect("builder")
            .bind_event("write", w)
            .finish();
        assert!(r.is_err());
        // event bound as int
        let r = lib
            .instantiate("PlaceConstraint", "p")
            .expect("builder")
            .bind_int("write", 3)
            .finish();
        assert!(r.is_err());
        // binding an undeclared parameter
        let r = lib
            .instantiate("PlaceConstraint", "p")
            .expect("builder")
            .bind_event("ghost", w)
            .finish();
        assert!(r.is_err());
    }

    #[test]
    fn final_state_and_introspection() {
        let mut u = Universe::new();
        let (p, w, _) = place_instance(&mut u, 0, 2);
        assert!(p.is_in_final_state());
        assert_eq!(p.current_state(), "S0");
        assert_eq!(p.bound_event("write"), Some(w));
        assert_eq!(p.bound_event("ghost"), None);
        assert_eq!(p.definition().name(), "PlaceConstraintDef");
    }
}
