//! Shared symbol and keyword tables for the two MoCCML lexers.
//!
//! The repository has two textual dialects: the relation-library syntax
//! of this crate ([`parse_library`](crate::parse_library), Fig. 3) and
//! the `.mcc` specification syntax of `moccml-lang`, which embeds
//! library blocks verbatim. Their lexers share almost every operator,
//! and before this module each kept its own hand-mirrored list — adding
//! an operator meant editing both and hoping they stayed in sync.
//!
//! This module is the single source of truth:
//!
//! * [`COMMON_SYM2`] / [`COMMON_SYM1`] — operators both dialects
//!   accept, listed exactly once;
//! * [`SymbolTable::library`] — the library dialect (adds `->`);
//! * [`SymbolTable::spec`] — the `.mcc` dialect (adds `=>` and `#`);
//! * [`LIBRARY_KEYWORDS`] / [`SPEC_KEYWORDS`] — the canonical keyword
//!   lists (keywords lex as plain identifiers; the parsers give them
//!   meaning positionally).
//!
//! All returned symbol strings are `&'static str`, so lexers can intern
//! token text by reference without allocating.

/// Two-character operators accepted by **both** dialects,
/// longest-match-first relative to their one-character prefixes.
pub const COMMON_SYM2: [&str; 8] = ["<=", ">=", "==", "!=", "&&", "||", "+=", "-="];

/// Single-character symbols accepted by **both** dialects.
pub const COMMON_SYM1: [&str; 16] = [
    "{", "}", "(", ")", "[", "]", ",", ";", ":", "=", "<", ">", "+", "-", "*", "!",
];

/// Keywords of the relation-library dialect (Fig. 3 grammar). They lex
/// as identifiers; [`parse_library`](crate::parse_library) recognizes
/// them positionally, so they stay usable as state or variable names.
pub const LIBRARY_KEYWORDS: [&str; 18] = [
    "library",
    "constraint",
    "automaton",
    "implements",
    "var",
    "int",
    "event",
    "initial",
    "final",
    "state",
    "from",
    "to",
    "when",
    "forbid",
    "guard",
    "do",
    "true",
    "false",
];

/// Keywords of the `.mcc` specification dialect (the `moccml-lang`
/// grammar). Library blocks embedded in a spec additionally use
/// [`LIBRARY_KEYWORDS`].
pub const SPEC_KEYWORDS: [&str; 9] = [
    "spec",
    "events",
    "constraint",
    "assert",
    "library",
    "always",
    "never",
    "eventually",
    "deadlock",
];

/// The operator table of one lexer dialect: the [`COMMON_SYM2`] /
/// [`COMMON_SYM1`] core plus the dialect's own extras, looked up
/// longest-match-first.
#[derive(Debug, Clone, Copy)]
pub struct SymbolTable {
    common2: &'static [&'static str],
    extra2: &'static [&'static str],
    common1: &'static [&'static str],
    extra1: &'static [&'static str],
}

static LIBRARY_TABLE: SymbolTable = SymbolTable {
    common2: &COMMON_SYM2,
    extra2: &["->"],
    common1: &COMMON_SYM1,
    extra1: &[],
};

static SPEC_TABLE: SymbolTable = SymbolTable {
    common2: &COMMON_SYM2,
    extra2: &["=>"],
    common1: &COMMON_SYM1,
    extra1: &["#"],
};

impl SymbolTable {
    /// The relation-library dialect: the common core plus `->`.
    #[must_use]
    pub fn library() -> &'static SymbolTable {
        &LIBRARY_TABLE
    }

    /// The `.mcc` specification dialect: the common core plus `=>` and
    /// `#`.
    #[must_use]
    pub fn spec() -> &'static SymbolTable {
        &SPEC_TABLE
    }

    /// The interned two-character operator starting with `a` then `b`,
    /// if this dialect has one. Call before [`one_char`](Self::one_char)
    /// for longest-match lexing.
    #[must_use]
    pub fn two_char(&self, a: char, b: char) -> Option<&'static str> {
        self.common2.iter().chain(self.extra2).copied().find(|s| {
            let mut cs = s.chars();
            cs.next() == Some(a) && cs.next() == Some(b)
        })
    }

    /// The interned single-character symbol for `c`, if this dialect
    /// has one.
    #[must_use]
    pub fn one_char(&self, c: char) -> Option<&'static str> {
        self.common1
            .iter()
            .chain(self.extra1)
            .copied()
            .find(|s| s.starts_with(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dialect_tables_extend_the_common_core() {
        for table in [SymbolTable::library(), SymbolTable::spec()] {
            for s in COMMON_SYM2 {
                let mut cs = s.chars();
                let (a, b) = (cs.next().unwrap(), cs.next().unwrap());
                assert_eq!(table.two_char(a, b), Some(s));
            }
            for s in COMMON_SYM1 {
                let c = s.chars().next().unwrap();
                assert_eq!(table.one_char(c), Some(s));
            }
        }
    }

    #[test]
    fn arrows_and_hash_are_dialect_specific() {
        let lib = SymbolTable::library();
        let spec = SymbolTable::spec();
        assert_eq!(lib.two_char('-', '>'), Some("->"));
        assert_eq!(spec.two_char('-', '>'), None);
        assert_eq!(spec.two_char('=', '>'), Some("=>"));
        assert_eq!(lib.two_char('=', '>'), None);
        assert_eq!(spec.one_char('#'), Some("#"));
        assert_eq!(lib.one_char('#'), None);
    }

    #[test]
    fn two_char_lookup_wins_over_one_char_prefixes() {
        // every two-char operator's first char is also a one-char
        // symbol, so lexers must try two_char first; this pins the
        // overlap the longest-match rule exists for
        for table in [SymbolTable::library(), SymbolTable::spec()] {
            let mut prefixed = 0;
            for s in COMMON_SYM2 {
                let c = s.chars().next().unwrap();
                if table.one_char(c).is_some() {
                    prefixed += 1;
                }
            }
            assert!(prefixed >= 6, "only {prefixed} overlapping prefixes");
        }
    }

    #[test]
    fn keywords_lex_as_identifiers() {
        // keywords never collide with the symbol tables: they are
        // alphabetic, so both lexers emit them as Ident tokens
        for kw in LIBRARY_KEYWORDS.iter().chain(SPEC_KEYWORDS.iter()) {
            assert!(kw.chars().all(|c| c.is_ascii_alphabetic()), "{kw}");
        }
    }
}
