//! The MoCCML metamodel excerpt of Fig. 2: libraries, declarations,
//! automata definitions, states and transitions.

use crate::error::AutomataError;
use crate::expr::{Action, BoolExpr, IntExpr};
use crate::instance::InstanceBuilder;
use std::collections::HashSet;
use std::sync::Arc;

/// Kind of a constraint parameter — the paper restricts parameters and
/// variables to events and integers "to ease exhaustive simulations".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// An event parameter, bound to a concrete
    /// [`EventId`](moccml_kernel::EventId) at instantiation.
    Event,
    /// An integer parameter, bound to a constant at instantiation.
    Int,
}

/// The prototype of a constraint (Fig. 2: `ConstraintDeclaration`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintDeclaration {
    name: String,
    params: Vec<(String, ParamKind)>,
}

impl ConstraintDeclaration {
    /// Creates a declaration with ordered, typed parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::DuplicateName`] if two parameters share a
    /// name.
    pub fn new(name: &str, params: Vec<(String, ParamKind)>) -> Result<Self, AutomataError> {
        let mut seen = HashSet::new();
        for (p, _) in &params {
            if !seen.insert(p.clone()) {
                return Err(AutomataError::DuplicateName {
                    kind: "parameter",
                    name: p.clone(),
                });
            }
        }
        Ok(ConstraintDeclaration {
            name: name.to_owned(),
            params,
        })
    }

    /// Declaration name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered `(name, kind)` parameter list.
    #[must_use]
    pub fn params(&self) -> &[(String, ParamKind)] {
        &self.params
    }

    /// Kind of parameter `name`, if declared.
    #[must_use]
    pub fn param_kind(&self, name: &str) -> Option<ParamKind> {
        self.params.iter().find(|(p, _)| p == name).map(|(_, k)| *k)
    }

    /// Names of the event parameters, in declaration order.
    #[must_use]
    pub fn event_params(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|(_, k)| *k == ParamKind::Event)
            .map(|(p, _)| p.as_str())
            .collect()
    }

    /// Names of the integer parameters, in declaration order.
    #[must_use]
    pub fn int_params(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|(_, k)| *k == ParamKind::Int)
            .map(|(p, _)| p.as_str())
            .collect()
    }
}

/// A local variable declaration with its initialisation expression
/// (Fig. 2: `DeclarationBlock` / `Variable`; Fig. 3 initialises
/// `size = itsDelay` on entering the initial state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Initial value, evaluated over the integer parameters.
    pub init: IntExpr,
}

/// A transition of a constraint automaton (Fig. 2: `Transition`,
/// `TransitionTrigger`, `Guard`, `Action`).
///
/// The transition fires on a step where every `trueTriggers` event is
/// present, every `falseTriggers` event absent, and the guard evaluates
/// to true over the local variables and parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Index of the source state.
    pub source: usize,
    /// Index of the target state.
    pub target: usize,
    /// Event parameters that must be present.
    pub true_triggers: Vec<String>,
    /// Event parameters that must be absent.
    pub false_triggers: Vec<String>,
    /// Optional guard over integer variables/parameters (absent = true).
    pub guard: Option<BoolExpr>,
    /// Assignments executed when the transition fires.
    pub actions: Vec<Action>,
}

/// A constraint automaton definition (Fig. 2:
/// `ConstraintAutomataDefinition`): states with one initial and one or
/// more final states, local variables, and transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutomatonDefinition {
    name: String,
    declaration: ConstraintDeclaration,
    states: Vec<String>,
    initial: usize,
    finals: Vec<usize>,
    variables: Vec<VarDecl>,
    transitions: Vec<Transition>,
}

impl AutomatonDefinition {
    /// Assembles and validates a definition.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidDefinition`] when the structure
    /// violates Fig. 2's multiplicities (no state, initial/final out of
    /// range, empty finals) and [`AutomataError::UnknownName`] /
    /// [`AutomataError::DuplicateName`] for dangling or colliding
    /// references (triggers must be event parameters, guard and action
    /// expressions may only mention integer parameters and variables,
    /// action targets must be variables).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        declaration: ConstraintDeclaration,
        states: Vec<String>,
        initial: usize,
        finals: Vec<usize>,
        variables: Vec<VarDecl>,
        transitions: Vec<Transition>,
    ) -> Result<Self, AutomataError> {
        let invalid = |reason: String| AutomataError::InvalidDefinition {
            definition: name.to_owned(),
            reason,
        };
        if states.is_empty() {
            return Err(invalid("an automaton needs at least one state".into()));
        }
        let mut seen = HashSet::new();
        for s in &states {
            if !seen.insert(s.clone()) {
                return Err(AutomataError::DuplicateName {
                    kind: "state",
                    name: s.clone(),
                });
            }
        }
        if initial >= states.len() {
            return Err(invalid(format!(
                "initial state index {initial} out of range"
            )));
        }
        if finals.is_empty() {
            return Err(invalid("at least one final state is required".into()));
        }
        for &f in &finals {
            if f >= states.len() {
                return Err(invalid(format!("final state index {f} out of range")));
            }
        }
        let mut var_names = HashSet::new();
        for v in &variables {
            if declaration.param_kind(&v.name).is_some() {
                return Err(AutomataError::DuplicateName {
                    kind: "variable (shadows parameter)",
                    name: v.name.clone(),
                });
            }
            if !var_names.insert(v.name.clone()) {
                return Err(AutomataError::DuplicateName {
                    kind: "variable",
                    name: v.name.clone(),
                });
            }
            // inits may only use integer parameters
            let mut refs = Vec::new();
            v.init.collect_refs(&mut refs);
            for r in refs {
                if declaration.param_kind(&r) != Some(ParamKind::Int) {
                    return Err(AutomataError::UnknownName {
                        kind: "integer parameter in variable initialiser",
                        name: r,
                    });
                }
            }
        }
        let int_ok =
            |n: &str| var_names.contains(n) || declaration.param_kind(n) == Some(ParamKind::Int);
        for (i, t) in transitions.iter().enumerate() {
            if t.source >= states.len() || t.target >= states.len() {
                return Err(invalid(format!(
                    "transition {i} references a missing state"
                )));
            }
            for trig in t.true_triggers.iter().chain(&t.false_triggers) {
                if declaration.param_kind(trig) != Some(ParamKind::Event) {
                    return Err(AutomataError::UnknownName {
                        kind: "event parameter in trigger",
                        name: trig.clone(),
                    });
                }
            }
            if let Some(g) = &t.guard {
                let mut refs = Vec::new();
                g.collect_refs(&mut refs);
                for r in refs {
                    if !int_ok(&r) {
                        return Err(AutomataError::UnknownName {
                            kind: "integer name in guard",
                            name: r,
                        });
                    }
                }
            }
            for a in &t.actions {
                if !var_names.contains(&a.var) {
                    return Err(AutomataError::UnknownName {
                        kind: "assigned variable",
                        name: a.var.clone(),
                    });
                }
                let mut refs = Vec::new();
                a.expr.collect_refs(&mut refs);
                for r in refs {
                    if !int_ok(&r) {
                        return Err(AutomataError::UnknownName {
                            kind: "integer name in action",
                            name: r,
                        });
                    }
                }
            }
        }
        Ok(AutomatonDefinition {
            name: name.to_owned(),
            declaration,
            states,
            initial,
            finals,
            variables,
            transitions,
        })
    }

    /// Definition name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The implemented declaration.
    #[must_use]
    pub fn declaration(&self) -> &ConstraintDeclaration {
        &self.declaration
    }

    /// State names.
    #[must_use]
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// Index of the initial state.
    #[must_use]
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Indices of the final states.
    #[must_use]
    pub fn finals(&self) -> &[usize] {
        &self.finals
    }

    /// Local variables.
    #[must_use]
    pub fn variables(&self) -> &[VarDecl] {
        &self.variables
    }

    /// Transitions.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Index of state `name`, if declared.
    #[must_use]
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.states.iter().position(|s| s == name)
    }

    /// Conservative non-determinism check: pairs of transitions leaving
    /// the same state whose trigger sets are identical and whose guards
    /// could both hold (syntactically: either guard absent or both
    /// non-constant). Returns human-readable warnings; an empty result
    /// does not prove determinism, but a non-empty one flags genuinely
    /// ambiguous specifications.
    #[must_use]
    pub fn determinism_warnings(&self) -> Vec<String> {
        let mut warnings = Vec::new();
        for (i, a) in self.transitions.iter().enumerate() {
            for (j, b) in self.transitions.iter().enumerate().skip(i + 1) {
                if a.source != b.source {
                    continue;
                }
                let same_true = {
                    let mut x = a.true_triggers.clone();
                    let mut y = b.true_triggers.clone();
                    x.sort();
                    y.sort();
                    x == y
                };
                if same_true && (a.guard.is_none() || b.guard.is_none()) {
                    warnings.push(format!(
                        "transitions {i} and {j} from state `{}` share trueTriggers and at \
                         least one has no guard",
                        self.states[a.source]
                    ));
                }
            }
        }
        warnings
    }
}

/// A library of constraint declarations and automata definitions
/// (Fig. 2: `RelationLibrary`; Fig. 3: `SimpleSDFRelationLibrary`).
#[derive(Debug, Clone, Default)]
pub struct RelationLibrary {
    name: String,
    declarations: Vec<ConstraintDeclaration>,
    definitions: Vec<Arc<AutomatonDefinition>>,
}

impl RelationLibrary {
    /// Creates an empty library.
    #[must_use]
    pub fn new(name: &str) -> Self {
        RelationLibrary {
            name: name.to_owned(),
            declarations: Vec::new(),
            definitions: Vec::new(),
        }
    }

    /// Library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a declaration.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::DuplicateName`] if the name is taken.
    pub fn add_declaration(
        &mut self,
        declaration: ConstraintDeclaration,
    ) -> Result<(), AutomataError> {
        if self.declaration(declaration.name()).is_some() {
            return Err(AutomataError::DuplicateName {
                kind: "constraint declaration",
                name: declaration.name().to_owned(),
            });
        }
        self.declarations.push(declaration);
        Ok(())
    }

    /// Adds a definition; its declaration must already be present with a
    /// matching prototype.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownName`] if the implemented
    /// declaration is missing, [`AutomataError::InvalidDefinition`] if
    /// its parameters disagree, [`AutomataError::DuplicateName`] if a
    /// definition for the declaration already exists.
    pub fn add_definition(&mut self, definition: AutomatonDefinition) -> Result<(), AutomataError> {
        let decl_name = definition.declaration().name().to_owned();
        let Some(existing) = self.declaration(&decl_name) else {
            return Err(AutomataError::UnknownName {
                kind: "constraint declaration",
                name: decl_name,
            });
        };
        if existing.params() != definition.declaration().params() {
            return Err(AutomataError::InvalidDefinition {
                definition: definition.name().to_owned(),
                reason: format!("parameters disagree with declaration `{decl_name}`"),
            });
        }
        if self.definition_for(&decl_name).is_some() {
            return Err(AutomataError::DuplicateName {
                kind: "definition for declaration",
                name: decl_name,
            });
        }
        self.definitions.push(Arc::new(definition));
        Ok(())
    }

    /// Looks up a declaration by name.
    #[must_use]
    pub fn declaration(&self, name: &str) -> Option<&ConstraintDeclaration> {
        self.declarations.iter().find(|d| d.name() == name)
    }

    /// All declarations.
    #[must_use]
    pub fn declarations(&self) -> &[ConstraintDeclaration] {
        &self.declarations
    }

    /// The definition implementing declaration `decl_name`, if any.
    #[must_use]
    pub fn definition_for(&self, decl_name: &str) -> Option<&Arc<AutomatonDefinition>> {
        self.definitions
            .iter()
            .find(|d| d.declaration().name() == decl_name)
    }

    /// All definitions.
    #[must_use]
    pub fn definitions(&self) -> &[Arc<AutomatonDefinition>] {
        &self.definitions
    }

    /// Starts instantiating the constraint declared as `decl_name` — the
    /// paper's instantiation process ("which are set during the
    /// instantiation process").
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownName`] if no definition
    /// implements `decl_name`.
    pub fn instantiate(
        &self,
        decl_name: &str,
        instance_name: &str,
    ) -> Result<InstanceBuilder, AutomataError> {
        let def = self
            .definition_for(decl_name)
            .ok_or_else(|| AutomataError::UnknownName {
                kind: "definition for declaration",
                name: decl_name.to_owned(),
            })?;
        Ok(InstanceBuilder::new(Arc::clone(def), instance_name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn simple_decl() -> ConstraintDeclaration {
        ConstraintDeclaration::new(
            "C",
            vec![
                ("e".to_owned(), ParamKind::Event),
                ("n".to_owned(), ParamKind::Int),
            ],
        )
        .expect("valid declaration")
    }

    fn simple_def() -> AutomatonDefinition {
        AutomatonDefinition::new(
            "CDef",
            simple_decl(),
            vec!["S0".into()],
            0,
            vec![0],
            vec![VarDecl {
                name: "x".into(),
                init: IntExpr::var("n"),
            }],
            vec![Transition {
                source: 0,
                target: 0,
                true_triggers: vec!["e".into()],
                false_triggers: vec![],
                guard: Some(BoolExpr::cmp(
                    IntExpr::var("x"),
                    CmpOp::Gt,
                    IntExpr::Const(0),
                )),
                actions: vec![Action::decrement("x", IntExpr::Const(1))],
            }],
        )
        .expect("valid definition")
    }

    #[test]
    fn declaration_rejects_duplicate_params() {
        let r = ConstraintDeclaration::new(
            "C",
            vec![
                ("e".to_owned(), ParamKind::Event),
                ("e".to_owned(), ParamKind::Int),
            ],
        );
        assert!(matches!(r, Err(AutomataError::DuplicateName { .. })));
    }

    #[test]
    fn declaration_param_queries() {
        let d = simple_decl();
        assert_eq!(d.param_kind("e"), Some(ParamKind::Event));
        assert_eq!(d.param_kind("n"), Some(ParamKind::Int));
        assert_eq!(d.param_kind("z"), None);
        assert_eq!(d.event_params(), vec!["e"]);
        assert_eq!(d.int_params(), vec!["n"]);
    }

    #[test]
    fn definition_validates_structure() {
        // no states
        let r = AutomatonDefinition::new("D", simple_decl(), vec![], 0, vec![], vec![], vec![]);
        assert!(r.is_err());
        // initial out of range
        let r = AutomatonDefinition::new(
            "D",
            simple_decl(),
            vec!["S0".into()],
            1,
            vec![0],
            vec![],
            vec![],
        );
        assert!(r.is_err());
        // finals empty
        let r = AutomatonDefinition::new(
            "D",
            simple_decl(),
            vec!["S0".into()],
            0,
            vec![],
            vec![],
            vec![],
        );
        assert!(r.is_err());
    }

    #[test]
    fn definition_validates_references() {
        // unknown trigger
        let r = AutomatonDefinition::new(
            "D",
            simple_decl(),
            vec!["S0".into()],
            0,
            vec![0],
            vec![],
            vec![Transition {
                source: 0,
                target: 0,
                true_triggers: vec!["ghost".into()],
                false_triggers: vec![],
                guard: None,
                actions: vec![],
            }],
        );
        assert!(matches!(r, Err(AutomataError::UnknownName { .. })));
        // int param used as trigger
        let r = AutomatonDefinition::new(
            "D",
            simple_decl(),
            vec!["S0".into()],
            0,
            vec![0],
            vec![],
            vec![Transition {
                source: 0,
                target: 0,
                true_triggers: vec!["n".into()],
                false_triggers: vec![],
                guard: None,
                actions: vec![],
            }],
        );
        assert!(r.is_err());
        // action assigns an undeclared variable
        let r = AutomatonDefinition::new(
            "D",
            simple_decl(),
            vec!["S0".into()],
            0,
            vec![0],
            vec![],
            vec![Transition {
                source: 0,
                target: 0,
                true_triggers: vec!["e".into()],
                false_triggers: vec![],
                guard: None,
                actions: vec![Action::assign("ghost", IntExpr::Const(0))],
            }],
        );
        assert!(r.is_err());
    }

    #[test]
    fn variable_shadowing_parameter_is_rejected() {
        let r = AutomatonDefinition::new(
            "D",
            simple_decl(),
            vec!["S0".into()],
            0,
            vec![0],
            vec![VarDecl {
                name: "n".into(),
                init: IntExpr::Const(0),
            }],
            vec![],
        );
        assert!(matches!(r, Err(AutomataError::DuplicateName { .. })));
    }

    #[test]
    fn library_wiring() {
        let mut lib = RelationLibrary::new("L");
        lib.add_declaration(simple_decl()).expect("adds");
        assert!(lib.add_declaration(simple_decl()).is_err());
        lib.add_definition(simple_def()).expect("adds definition");
        assert!(lib.add_definition(simple_def()).is_err()); // duplicate
        assert!(lib.definition_for("C").is_some());
        assert!(lib.definition_for("missing").is_none());
        assert!(lib.instantiate("C", "c1").is_ok());
        assert!(lib.instantiate("missing", "x").is_err());
    }

    #[test]
    fn definition_requires_known_declaration() {
        let mut lib = RelationLibrary::new("L");
        let r = lib.add_definition(simple_def());
        assert!(matches!(r, Err(AutomataError::UnknownName { .. })));
    }

    #[test]
    fn determinism_warning_detects_ambiguity() {
        let def = AutomatonDefinition::new(
            "D",
            simple_decl(),
            vec!["S0".into(), "S1".into()],
            0,
            vec![0],
            vec![],
            vec![
                Transition {
                    source: 0,
                    target: 0,
                    true_triggers: vec!["e".into()],
                    false_triggers: vec![],
                    guard: None,
                    actions: vec![],
                },
                Transition {
                    source: 0,
                    target: 1,
                    true_triggers: vec!["e".into()],
                    false_triggers: vec![],
                    guard: None,
                    actions: vec![],
                },
            ],
        )
        .expect("structurally valid");
        assert_eq!(def.determinism_warnings().len(), 1);
        assert!(simple_def().determinism_warnings().is_empty());
    }

    #[test]
    fn state_index_lookup() {
        let def = simple_def();
        assert_eq!(def.state_index("S0"), Some(0));
        assert_eq!(def.state_index("S9"), None);
    }
}
