//! # moccml-automata
//!
//! The *constraint automata definitions* of MoCCML — the paper's primary
//! contribution (Fig. 2 metamodel, Fig. 3 example, Sec. II-C semantics).
//!
//! A [`RelationLibrary`] groups [`ConstraintDeclaration`]s (the
//! prototypes: name + typed parameters, `event` or `int`) and
//! [`AutomatonDefinition`]s (the bodies: states, local integer
//! variables, and transitions carrying `trueTriggers`, `falseTriggers`,
//! an integer [`BoolExpr`] guard and assignment [`Action`]s).
//!
//! Instantiating a definition with actual events and integer constants
//! yields an [`AutomatonInstance`], a stateful
//! [`Constraint`](moccml_kernel::Constraint) whose per-step boolean
//! formula is, exactly as in Sec. II-C, *the disjunction of the boolean
//! expressions associated to the outgoing transitions of the current
//! state*: for a transition with a true guard, the conjunction of its
//! `trueTriggers` with the negated `falseTriggers`.
//!
//! One deliberate completion of the paper's semantics: an automaton also
//! accepts any step in which **none** of its constrained events occur
//! (*stuttering*), leaving its state unchanged. Without it, the
//! `PlaceConstraint` of Fig. 3 would force a read or write at every
//! step of the whole system, which contradicts the SDF semantics the
//! paper derives; stuttering is the standard convention in CCSL-family
//! tools (TimeSquare).
//!
//! The crate also ships a textual concrete syntax ([`parse_library`]) so
//! that libraries can be written the way Fig. 3's graphical editor
//! displays them.
//!
//! ## Example: Fig. 3's `PlaceConstraint`
//!
//! ```
//! use moccml_automata::parse_library;
//! use moccml_kernel::{Constraint, Step, Universe};
//!
//! let lib = parse_library(r#"
//! library SimpleSDFRelationLibrary {
//!   constraint PlaceConstraint(write: event, read: event,
//!                              pushRate: int, popRate: int,
//!                              itsDelay: int, itsCapacity: int)
//!   automaton PlaceConstraintDef implements PlaceConstraint {
//!     var size: int = itsDelay;
//!     initial state S0;
//!     final state S0;
//!     from S0 to S0 when {write} forbid {read}
//!       guard [size <= itsCapacity - pushRate] do size += pushRate;
//!     from S0 to S0 when {read} forbid {write}
//!       guard [size >= popRate] do size -= popRate;
//!   }
//! }"#)?;
//!
//! let mut u = Universe::new();
//! let (w, r) = (u.event("write"), u.event("read"));
//! let mut place = lib
//!     .instantiate("PlaceConstraint", "p1")?
//!     .bind_event("write", w)
//!     .bind_event("read", r)
//!     .bind_int("pushRate", 1)
//!     .bind_int("popRate", 1)
//!     .bind_int("itsDelay", 0)
//!     .bind_int("itsCapacity", 1)
//!     .finish()?;
//!
//! // empty place: only write (or stuttering) is acceptable
//! assert!(place.current_formula().eval(&Step::from_events([w])));
//! assert!(!place.current_formula().eval(&Step::from_events([r])));
//! place.fire(&Step::from_events([w]))?;
//! // full place: only read is acceptable
//! assert!(!place.current_formula().eval(&Step::from_events([w])));
//! assert!(place.current_formula().eval(&Step::from_events([r])));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
mod instance;
mod metamodel;
mod parser;
mod render;
pub mod symbols;

pub use error::AutomataError;
pub use expr::{Action, BoolExpr, CmpOp, IntExpr};
pub use instance::{AutomatonInstance, InstanceBuilder};
pub use metamodel::{
    AutomatonDefinition, ConstraintDeclaration, ParamKind, RelationLibrary, Transition, VarDecl,
};
pub use parser::parse_library;
pub use render::{automaton_to_dot, library_to_text};
