//! Error type for library construction, parsing and instantiation.

use std::error::Error;
use std::fmt;

/// Errors raised while building, parsing, validating or instantiating
/// MoCCML constraint automata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AutomataError {
    /// A name (state, variable, parameter, declaration…) was referenced
    /// but never declared.
    UnknownName {
        /// What kind of thing was looked up.
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// A name was declared twice in the same scope.
    DuplicateName {
        /// What kind of thing collided.
        kind: &'static str,
        /// The colliding name.
        name: String,
    },
    /// A definition failed structural validation.
    InvalidDefinition {
        /// Definition name.
        definition: String,
        /// What was wrong.
        reason: String,
    },
    /// An instantiation was incomplete or ill-typed.
    InvalidBinding {
        /// Instance name.
        instance: String,
        /// What was wrong.
        reason: String,
    },
    /// The textual concrete syntax could not be parsed.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token on its line.
        column: usize,
        /// What was expected / found.
        message: String,
    },
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} `{name}`")
            }
            AutomataError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} `{name}`")
            }
            AutomataError::InvalidDefinition { definition, reason } => {
                write!(f, "invalid definition `{definition}`: {reason}")
            }
            AutomataError::InvalidBinding { instance, reason } => {
                write!(f, "invalid binding for instance `{instance}`: {reason}")
            }
            AutomataError::Parse {
                line,
                column,
                message,
            } => {
                write!(f, "parse error at line {line}, column {column}: {message}")
            }
        }
    }
}

impl Error for AutomataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AutomataError::UnknownName {
            kind: "state",
            name: "S9".into(),
        };
        assert_eq!(e.to_string(), "unknown state `S9`");
        let e = AutomataError::Parse {
            line: 3,
            column: 14,
            message: "expected `}`".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("column 14"));
    }
}
