//! # moccml
//!
//! Facade crate for the Rust reproduction of *"Towards a Meta-Language
//! for the Concurrency Concern in DSLs"* (DeAntoni, Diallo, Teodorov,
//! Champeau, Combemale — DATE 2015).
//!
//! Each layer of the paper's Fig. 1 lives in its own crate; this
//! package re-exports them under one roof and owns the cross-crate
//! integration tests (`tests/`) and runnable walkthroughs
//! (`examples/`).
//!
//! * [`kernel`] — events, steps, schedules, step formulas, the
//!   [`Constraint`](kernel::Constraint) protocol;
//! * [`automata`] — MoCCML constraint automata (Fig. 2/3) and their
//!   textual concrete syntax;
//! * [`ccsl`] — the declarative CCSL relation/expression library;
//! * [`metamodel`] — MOF-lite metamodels, models and the ECL-style
//!   mapping that weaves constraints over a model;
//! * [`engine`] — the generic execution engine: immutable compiled
//!   [`engine::Program`]s with cheap per-worker [`engine::Cursor`]s,
//!   `Engine` sessions with pluggable policies and streaming
//!   observers, and a deterministic parallel explorer;
//! * [`verify`] — the verification layer: temporal properties
//!   ([`verify::Prop`]) checked on the fly during exploration with
//!   deterministic early stop, replayable [`verify::Counterexample`]s
//!   and greedy witness minimization
//!   ([`verify::minimize_witness`]), schedule conformance checking,
//!   and bounded equivalence/refinement between two specifications —
//!   the synchronized product now runs through the parallel explorer;
//! * [`lang`] — the textual frontend: the `.mcc` specification
//!   format and property syntax ([`lang::parse_spec`],
//!   [`lang::parse_prop`], [`lang::compile`]) behind the `moccml`
//!   CLI binary (`check` / `explore` / `simulate` / `conformance` /
//!   `lint`);
//! * [`analyze`] — static analysis: the multi-pass lint engine
//!   behind `moccml lint` ([`analyze::analyze_str`]), with stable
//!   `A…` codes, text/JSON renderers, and the cone-of-influence
//!   report that feeds `verify::check_with`'s slicing;
//! * [`serve`] — the long-running verification service: an
//!   NDJSON-over-TCP daemon (`moccml serve`) with an LRU
//!   compiled-program cache keyed by the canonical pretty-printed
//!   form, a bounded job queue with per-request budgets and
//!   cooperative cancellation, and the shared machine-readable result
//!   schema behind `--format json`; owns the `moccml` binary;
//! * [`sdf`] — the paper's illustrative DSL (SigPML/SDF) and the PAM
//!   case study.
//!
//! ## Quickstart
//!
//! A specification is compiled once into an [`engine::Engine`] session;
//! the session then drives simulation (under a pluggable
//! [`engine::Policy`]), exploration and streaming observers on the same
//! compiled state:
//!
//! ```
//! use moccml::ccsl::Alternation;
//! use moccml::engine::{Engine, ExploreOptions, Lexicographic, MetricsObserver};
//! use moccml::kernel::{Specification, Universe};
//!
//! let mut u = Universe::new();
//! let a = u.event("a");
//! let b = u.event("b");
//! let mut spec = Specification::new("alt", u);
//! spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
//!
//! let metrics = MetricsObserver::new();
//! let mut engine = Engine::builder(spec)
//!     .policy(Lexicographic)
//!     .observer(metrics.clone())
//!     .build();
//! let space = engine.explore(&ExploreOptions::default());
//! assert_eq!(space.state_count(), 2); // the alternation two-cycle
//! let report = engine.run(4);
//! assert_eq!(report.steps_taken, 4);
//! assert_eq!(metrics.snapshot().steps, 4);
//! ```
//!
//! Exploration runs breadth first across
//! [`engine::ExploreOptions::workers`] threads and is **deterministic**:
//! the resulting state-space is byte-identical for every worker count.
//! (The 0.1 free functions `engine::acceptable_steps` /
//! `engine::explore(&spec, ..)` completed their one-release deprecation
//! and are gone; see the migration note in [`engine`].)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use moccml_analyze as analyze;
pub use moccml_automata as automata;
pub use moccml_ccsl as ccsl;
pub use moccml_engine as engine;
pub use moccml_kernel as kernel;
pub use moccml_lang as lang;
pub use moccml_metamodel as metamodel;
pub use moccml_obs as obs;
pub use moccml_sdf as sdf;
pub use moccml_serve as serve;
pub use moccml_verify as verify;
