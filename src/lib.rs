//! # moccml
//!
//! Facade crate for the Rust reproduction of *"Towards a Meta-Language
//! for the Concurrency Concern in DSLs"* (DeAntoni, Diallo, Teodorov,
//! Champeau, Combemale — DATE 2015).
//!
//! Each layer of the paper's Fig. 1 lives in its own crate; this
//! package re-exports them under one roof and owns the cross-crate
//! integration tests (`tests/`) and runnable walkthroughs
//! (`examples/`).
//!
//! * [`kernel`] — events, steps, schedules, step formulas, the
//!   [`Constraint`](kernel::Constraint) protocol;
//! * [`automata`] — MoCCML constraint automata (Fig. 2/3) and their
//!   textual concrete syntax;
//! * [`ccsl`] — the declarative CCSL relation/expression library;
//! * [`metamodel`] — MOF-lite metamodels, models and the ECL-style
//!   mapping that weaves constraints over a model;
//! * [`engine`] — the generic execution engine: step solver,
//!   simulator, exhaustive explorer;
//! * [`sdf`] — the paper's illustrative DSL (SigPML/SDF) and the PAM
//!   case study.
//!
//! ## Quickstart
//!
//! ```
//! use moccml::ccsl::Alternation;
//! use moccml::engine::{Policy, Simulator};
//! use moccml::kernel::{Specification, Universe};
//!
//! let mut u = Universe::new();
//! let a = u.event("a");
//! let b = u.event("b");
//! let mut spec = Specification::new("alt", u);
//! spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
//! let report = Simulator::new(spec, Policy::Lexicographic).run(4);
//! assert_eq!(report.steps_taken, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use moccml_automata as automata;
pub use moccml_ccsl as ccsl;
pub use moccml_engine as engine;
pub use moccml_kernel as kernel;
pub use moccml_metamodel as metamodel;
pub use moccml_sdf as sdf;
