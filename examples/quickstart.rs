//! Quickstart: write a MoCCML constraint automaton in the textual
//! syntax (the Fig. 3 `PlaceConstraint`), instantiate it, and drive it
//! with the generic execution engine.
//!
//! Run with: `cargo run -p moccml-bench --example quickstart`

use moccml_automata::parse_library;
use moccml_engine::{Engine, Random, SolverOptions, VcdObserver};
use moccml_kernel::{Specification, Universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. a MoCC library in the MoCCML textual concrete syntax
    let library = parse_library(
        r#"
        library SimpleSDFRelationLibrary {
          constraint PlaceConstraint(write: event, read: event,
                                     pushRate: int, popRate: int,
                                     itsDelay: int, itsCapacity: int)
          automaton PlaceConstraintDef implements PlaceConstraint {
            var size: int = itsDelay;
            initial state S0;
            final state S0;
            from S0 to S0 when {write} forbid {read}
              guard [size <= itsCapacity - pushRate] do size += pushRate;
            from S0 to S0 when {read} forbid {write}
              guard [size >= popRate] do size -= popRate;
          }
        }"#,
    )?;

    // 2. events of the model and an instantiated execution model
    let mut universe = Universe::new();
    let write = universe.event("producer.write");
    let read = universe.event("consumer.read");
    let mut spec = Specification::new("quickstart", universe);
    spec.add_constraint(Box::new(
        library
            .instantiate("PlaceConstraint", "buffer")?
            .bind_event("write", write)
            .bind_event("read", read)
            .bind_int("pushRate", 1)
            .bind_int("popRate", 1)
            .bind_int("itsDelay", 0)
            .bind_int("itsCapacity", 2)
            .finish()?,
    ));

    // 3. a compiled engine session: policy + solver + streaming VCD
    let vcd = VcdObserver::new("quickstart");
    let mut engine = Engine::builder(spec)
        .policy(Random::new(2015))
        .solver(SolverOptions::default())
        .observer(vcd.clone())
        .build();

    // 4. what can happen right now? (no re-lowering: the spec was
    //    compiled once when the session was built)
    println!("acceptable first steps:");
    for step in engine.acceptable_steps() {
        println!("  {}", step.display(engine.specification().universe()));
    }

    // 5. simulate 10 steps and print the trace
    let report = engine.run(10);
    println!();
    println!(
        "10-step random simulation (deadlocked: {}):",
        report.deadlocked
    );
    println!(
        "{}",
        report
            .schedule
            .render_timing_diagram(engine.specification().universe())
    );
    println!(
        "streamed VCD: {} bytes (open in GTKWave)",
        vcd.render().len()
    );
    Ok(())
}
