//! Quickstart: write a MoCCML constraint automaton in the textual
//! syntax (the Fig. 3 `PlaceConstraint`), instantiate it, and drive it
//! with the generic execution engine.
//!
//! Run with: `cargo run -p moccml-bench --example quickstart`

use moccml_automata::parse_library;
use moccml_engine::{acceptable_steps, Policy, Simulator, SolverOptions};
use moccml_kernel::{Specification, Universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. a MoCC library in the MoCCML textual concrete syntax
    let library = parse_library(
        r#"
        library SimpleSDFRelationLibrary {
          constraint PlaceConstraint(write: event, read: event,
                                     pushRate: int, popRate: int,
                                     itsDelay: int, itsCapacity: int)
          automaton PlaceConstraintDef implements PlaceConstraint {
            var size: int = itsDelay;
            initial state S0;
            final state S0;
            from S0 to S0 when {write} forbid {read}
              guard [size <= itsCapacity - pushRate] do size += pushRate;
            from S0 to S0 when {read} forbid {write}
              guard [size >= popRate] do size -= popRate;
          }
        }"#,
    )?;

    // 2. events of the model and an instantiated execution model
    let mut universe = Universe::new();
    let write = universe.event("producer.write");
    let read = universe.event("consumer.read");
    let mut spec = Specification::new("quickstart", universe);
    spec.add_constraint(Box::new(
        library
            .instantiate("PlaceConstraint", "buffer")?
            .bind_event("write", write)
            .bind_event("read", read)
            .bind_int("pushRate", 1)
            .bind_int("popRate", 1)
            .bind_int("itsDelay", 0)
            .bind_int("itsCapacity", 2)
            .finish()?,
    ));

    // 3. what can happen right now?
    println!("acceptable first steps:");
    for step in acceptable_steps(&spec, &SolverOptions::default()) {
        println!("  {}", step.display(spec.universe()));
    }

    // 4. simulate 10 steps and print the trace
    let mut simulator = Simulator::new(spec, Policy::Random { seed: 2015 });
    let report = simulator.run(10);
    println!();
    println!(
        "10-step random simulation (deadlocked: {}):",
        report.deadlocked
    );
    println!(
        "{}",
        report
            .schedule
            .render_timing_diagram(simulator.specification().universe())
    );
    Ok(())
}
