//! MoCCML is DSL-agnostic: this example defines a *different* DSL — a
//! tiny request/grant bus-arbitration language — gives it a concurrency
//! model with a fresh constraint automaton, weaves it through the
//! metamodel pipeline and analyses a model. No SDF involved: the point
//! of the paper is that the MoCC meta-language adapts to the designer's
//! own concepts.
//!
//! Run with: `cargo run -p moccml-bench --example custom_dsl`

use moccml_automata::parse_library;
use moccml_ccsl::Exclusion;
use moccml_engine::{Engine, ExploreOptions, Random};
use moccml_kernel::Constraint;
use moccml_metamodel::{
    weave, ArgExpr, AttrType, ConstraintRegistry, MappingSpec, MetaClass, Metamodel, Model,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. abstract syntax: a Bus with Master devices
    let mut mm = Metamodel::new("BusDSL");
    mm.add_class(MetaClass::new("Bus"))?;
    mm.add_class(
        MetaClass::new("Master")
            .with_attr("maxPending", AttrType::Int)
            .with_ref("bus", "Bus", false),
    )?;
    mm.validate()?;

    // 2. the concurrency concern: a handshake automaton per master —
    //    requests and grants alternate, with a bounded pending window
    let library = parse_library(
        r#"
        library BusMoCC {
          constraint Handshake(request: event, grant: event, maxPending: int)
          automaton HandshakeDef implements Handshake {
            var pending: int = 0;
            initial state S;
            final state S;
            from S to S when {request} forbid {grant}
              guard [pending < maxPending] do pending += 1;
            from S to S when {grant} forbid {request}
              guard [pending >= 1] do pending -= 1;
          }
        }"#,
    )?;
    let mut registry = ConstraintRegistry::new();
    registry.add_library(Arc::new(library));
    // grants are serialized on the bus: a native n-ary exclusion
    registry.add_native("GrantExclusion", |name, events, _| {
        if events.len() < 2 {
            return Err("GrantExclusion needs at least two events".into());
        }
        Ok(Box::new(Exclusion::new(name, events.iter().copied())) as Box<dyn Constraint>)
    });

    // 3. the mapping: events in the context of Master, one Handshake
    //    invariant per master
    let mapping = MappingSpec::new()
        .def_event("Master", "request")
        .def_event("Master", "grant")
        .def_invariant(
            "Master",
            "HandshakeProtocol",
            "Handshake",
            vec![
                ArgExpr::event(Vec::<String>::new(), "request"),
                ArgExpr::event(Vec::<String>::new(), "grant"),
                ArgExpr::attr(Vec::<String>::new(), "maxPending"),
            ],
        );

    // 4. a model: one bus, three masters with different windows
    let mut model = Model::new(Arc::new(mm));
    let bus = model.add_object("Bus", "axi")?;
    for (name, window) in [("cpu", 2), ("dma", 1), ("gpu", 1)] {
        let m = model.add_object("Master", name)?;
        model.set_int(m, "maxPending", window)?;
        model.add_link(m, "bus", bus)?;
    }

    // 5. weave, then add the bus-level grant exclusion manually
    let mut spec = weave(&model, &mapping, &registry)?;
    let grants: Vec<_> = ["cpu.grant", "dma.grant", "gpu.grant"]
        .iter()
        .map(|n| spec.universe().lookup(n).expect("woven event"))
        .collect();
    spec.add_constraint(Box::new(Exclusion::new("axi.grantSerialization", grants)));

    // 6. analyse: one session drives exploration and simulation on
    //    the same compiled execution model
    let mut engine = Engine::builder(spec).policy(Random::new(7)).build();
    let space = engine.explore(&ExploreOptions::default());
    println!("BusDSL execution model: {}", space.stats());
    println!("schedules of length 4: {}", space.count_schedules(4));

    let report = engine.run(12);
    println!("\n12-step random run:");
    println!(
        "{}",
        report
            .schedule
            .render_timing_diagram(engine.specification().universe())
    );
    Ok(())
}
