//! The Passive Acoustic Monitoring study from the paper's conclusion:
//! model the application under infinite resources, then deploy it on
//! three platforms and measure the impact of the allocation on the
//! valid schedulings by exhaustive exploration.
//!
//! Run with: `cargo run -p moccml-bench --example pam_deployment`

use moccml_engine::{Engine, ExploreOptions, Program, SafeMaxParallel};
use moccml_sdf::pam;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "PAM application: {} agents, {} places\n",
        pam::pam_application().agents().len(),
        pam::pam_application().places().len()
    );

    let mut configs = vec![("infinite-resources".to_owned(), pam::infinite_resources()?)];
    for (platform, deployment) in [
        pam::deployment_single_core(),
        pam::deployment_dual_core(),
        pam::deployment_quad_core(),
    ] {
        configs.push((
            platform.name().to_owned(),
            pam::deployed(&platform, &deployment)?,
        ));
    }

    println!(
        "{:<20} {:>8} {:>12} {:>10} {:>8}",
        "configuration", "states", "transitions", "deadlocks", "max ∥"
    );
    for (name, spec) in &configs {
        let stats = Program::compile(spec)
            .explore(&ExploreOptions::default())
            .stats();
        println!(
            "{name:<20} {:>8} {:>12} {:>10} {:>8}",
            stats.states, stats.transitions, stats.deadlocks, stats.max_step_parallelism
        );
    }

    // a trace on the dual-core platform
    let (platform, deployment) = pam::deployment_dual_core();
    let spec = pam::deployed(&platform, &deployment)?;
    let mut engine = Engine::builder(spec).policy(SafeMaxParallel).build();
    let report = engine.run(16);
    println!("\ndual-core 16-step schedule (deadlock-avoiding ASAP policy):");
    println!(
        "{}",
        report
            .schedule
            .render_timing_diagram(engine.specification().universe())
    );
    Ok(())
}
