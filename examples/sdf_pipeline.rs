//! A multirate signal-processing pipeline in the SDF extension:
//! static analysis (repetition vector), execution-model generation
//! through the metamodel pipeline, simulation and exploration.
//!
//! Run with: `cargo run -p moccml-bench --example sdf_pipeline`

use moccml_engine::{Engine, ExploreOptions, MetricsObserver, SafeMaxParallel};
use moccml_sdf::analysis::{is_consistent, repetition_vector, topology_matrix};
use moccml_sdf::mocc::MoccVariant;
use moccml_sdf::model_bridge::weave_specification;
use moccml_sdf::SdfGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // sampler --1:2--> decimator --1:1--> fft --4:1--> detector
    let mut graph = SdfGraph::new("sonar-pipeline");
    graph.add_agent("sampler", 0)?;
    graph.add_agent("decimator", 0)?;
    graph.add_agent("fft", 0)?;
    graph.add_agent("detector", 0)?;
    graph.connect("sampler", "decimator", 1, 2, 4, 0)?;
    graph.connect("decimator", "fft", 1, 1, 2, 0)?;
    graph.connect("fft", "detector", 4, 1, 4, 0)?;

    println!("consistent: {}", is_consistent(&graph));
    println!("topology matrix: {:?}", topology_matrix(&graph));
    println!("repetition vector: {:?}", repetition_vector(&graph)?);

    // execution model through metamodel + ECL-style mapping (Fig. 1)
    let spec = weave_specification(&graph, MoccVariant::Standard)?;
    println!(
        "\nexecution model: {} events, {} constraints",
        spec.universe().len(),
        spec.constraint_count()
    );

    // one engine session: exploration, simulation and streaming
    // metrics all run on the same compiled execution model
    let metrics = MetricsObserver::new();
    let mut engine = Engine::builder(spec)
        .policy(SafeMaxParallel)
        .observer(metrics.clone())
        .build();
    let space = engine.explore(&ExploreOptions::default());
    println!("state space: {}", space.stats());

    let report = engine.run(20);
    println!("\n20-step as-soon-as-possible schedule:");
    println!(
        "{}",
        report
            .schedule
            .render_timing_diagram(engine.specification().universe())
    );
    let m = metrics.snapshot();
    println!(
        "streamed metrics: {} steps, max ∥ {}, mean ∥ {:.2}",
        m.steps,
        m.max_parallelism,
        m.mean_parallelism()
    );
    Ok(())
}
