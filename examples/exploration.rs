//! Exhaustive exploration in depth: state-space construction, deadlock
//! detection, schedule counting and the effect of buffer sizing on an
//! SDF ring.
//!
//! Run with: `cargo run -p moccml-bench --example exploration`

use moccml_engine::{ExploreOptions, Program};
use moccml_sdf::mocc::build_specification;
use moccml_sdf::SdfGraph;

fn ring(capacity: u32, delay: u32) -> SdfGraph {
    let mut g = SdfGraph::new("ring");
    g.add_agent("a", 0).expect("fresh graph");
    g.add_agent("b", 0).expect("fresh graph");
    g.connect("a", "b", 1, 1, capacity, 0).expect("valid place");
    g.connect("b", "a", 1, 1, capacity, delay)
        .expect("valid place");
    g
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SDF ring a⇄b: effect of the return-place delay\n");
    println!(
        "{:<24} {:>7} {:>12} {:>10} {:>16}",
        "configuration", "states", "transitions", "deadlocks", "schedules(len 8)"
    );
    for (label, capacity, delay) in [
        ("cap 1, delay 0 (dead)", 1u32, 0u32),
        ("cap 1, delay 1", 1, 1),
        ("cap 2, delay 1", 2, 1),
        ("cap 2, delay 2", 2, 2),
    ] {
        let spec = build_specification(&ring(capacity, delay))?;
        let space = Program::new(spec).explore(&ExploreOptions::default());
        println!(
            "{label:<24} {:>7} {:>12} {:>10} {:>16}",
            space.state_count(),
            space.transition_count(),
            space.deadlocks().len(),
            space.count_schedules(8)
        );
    }

    println!("\nThe delay-0 ring deadlocks immediately (no token anywhere);");
    println!("adding delay tokens unlocks it, and larger capacities admit");
    println!("more concurrent schedules — all derived from the same MoCC.");
    Ok(())
}
