//! The verification layer end to end: state temporal properties over a
//! specification, get minimal replayable counterexamples, check a
//! recorded trace for conformance, and compare two formulations of the
//! same protocol for behavioural equivalence.
//!
//! Run with: `cargo run --example verification`

use moccml::ccsl::{Alternation, Exclusion, Precedence};
use moccml::engine::{ExploreOptions, Program};
use moccml::kernel::{Schedule, Specification, StepPred, Universe};
use moccml::verify::{
    check, check_equivalence, check_props, conformance, EquivOptions, EquivalenceVerdict, Prop,
    PropStatus, Verdict,
};

fn main() {
    // a small request/grant/release protocol: at most two outstanding
    // requests, grants alternate with releases, never both at once
    let mut u = Universe::new();
    let req = u.event("req");
    let grant = u.event("grant");
    let release = u.event("release");
    let mut spec = Specification::new("protocol", u.clone());
    spec.add_constraint(Box::new(
        Precedence::strict("req<grant", req, grant).with_bound(2),
    ));
    spec.add_constraint(Box::new(Alternation::new("grant~release", grant, release)));
    spec.add_constraint(Box::new(Exclusion::new("one-at-a-time", [grant, release])));
    let program = Program::new(spec);

    // ---- on-the-fly property checking: these all hold, proven on the
    // fully explored (finite) space
    println!("== property checking (on the fly, deterministic early stop)\n");
    let props = [
        Prop::DeadlockFree,
        Prop::Never(StepPred::and(
            StepPred::fired(grant),
            StepPred::fired(release),
        )),
        Prop::EventuallyWithin(StepPred::fired(grant), 3),
    ];
    let report = check_props(&program, &props, &ExploreOptions::default());
    for (prop, status) in props.iter().zip(&report.statuses) {
        print_status(&u, prop, status);
    }
    println!(
        "(visited {} states, {} transitions)\n",
        report.states_visited, report.transitions_visited
    );

    // a violated safety property: the checker stops at the first
    // violating BFS level and hands back a minimal, replayable witness
    let violated = Prop::Always(StepPred::implies(grant, req));
    let status = check(&program, &violated, &ExploreOptions::default());
    print_status(&u, &violated, &status);
    if let PropStatus::Violated(ce) = &status {
        assert!(ce.replays_on(&program), "witnesses always replay");
    }
    println!();

    // ---- conformance of recorded traces (plain-text round trip)
    println!("== conformance checking\n");
    let trace = Schedule::parse_lines("req\ngrant\nrelease\nreq\n", &u).expect("log parses");
    match conformance(&program, &trace) {
        Verdict::Conforms => println!("recorded trace conforms"),
        Verdict::Violation { step, violated } => {
            println!("recorded trace violates at step {step}: {violated:?}")
        }
    }
    let bad = Schedule::parse_lines("grant\n", &u).expect("parses");
    match conformance(&program, &bad) {
        Verdict::Violation { step, violated } => {
            println!("corrupted trace violates at step {step}: constraints {violated:?}\n")
        }
        Verdict::Conforms => unreachable!("grant before req is rejected"),
    }

    // ---- equivalence of two formulations
    println!("== equivalence checking\n");
    let mut relaxed = Specification::new("relaxed", u.clone());
    relaxed.add_constraint(Box::new(
        Precedence::strict("req<grant", req, grant).with_bound(2),
    ));
    relaxed.add_constraint(Box::new(Precedence::strict(
        "grant<release",
        grant,
        release,
    )));
    let relaxed = Program::new(relaxed);
    match check_equivalence(
        &program,
        &relaxed,
        &EquivOptions::default().with_max_states(5_000),
    )
    .expect("same universe")
    {
        EquivalenceVerdict::Equivalent { pairs_visited } => {
            println!("equivalent ({pairs_visited} state pairs)")
        }
        EquivalenceVerdict::Distinguished(d) => println!(
            "distinguished after {} common step(s): {} accepted by {:?} only",
            d.schedule.len(),
            d.step.display(&u),
            d.only_accepted_by
        ),
        EquivalenceVerdict::Unknown { pairs_visited } => {
            println!("unknown (bound hit after {pairs_visited} pairs)")
        }
    }
}

fn print_status(u: &Universe, prop: &Prop, status: &PropStatus) {
    match status {
        PropStatus::Holds => println!("{:<32} holds", prop.display(u)),
        PropStatus::Violated(ce) => println!(
            "{:<32} VIOLATED, witness ({} steps): {}",
            prop.display(u),
            ce.schedule.len(),
            ce.schedule
                .to_lines(u)
                .expect("plain names")
                .trim_end()
                .replace('\n', " ; "),
        ),
        PropStatus::Undetermined => println!("{:<32} undetermined", prop.display(u)),
    }
}
